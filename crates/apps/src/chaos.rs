//! The chaos engine: multi-fault schedules, seeded generation, a run
//! harness wired to the invariant checker, and a shrinking reproducer.
//!
//! A [`FaultSchedule`] is a serializable list of timed fault and restore
//! actions over the full `simnet` fault surface — node crash/reboot, NIC
//! failure, cable cut, loss burst, frame corruption, serial failure,
//! application crash. Schedules print as one line
//! (`@500 crash primary; @700 serial-fail`) and parse back exactly, so a
//! failing case is a paste-able reproducer.
//!
//! [`run_chaos_case`] executes a schedule against the standard topology
//! with a verifying download workload and judges the run with
//! [`sttcp::invariant::check`]: the [`Expectation`] is derived from the
//! schedule alone, conservatively, so a violation is always a real
//! protocol bug. [`shrink_schedule`] then minimizes a violating schedule
//! by greedy action removal followed by timestamp snapping — replay is
//! bit-for-bit deterministic, so the shrunk schedule still fails for the
//! same reason.

use std::fmt;
use std::rc::Rc;
use std::str::FromStr;

use simnet::link::{LinkDir, LinkId};
use simnet::node::{NicId, NodeId};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

use sttcp::config::{Role, StTcpConfig};
use sttcp::events::StTcpEvent;
use sttcp::invariant::{self, ClientView, Expectation, Outcome, ServerView, Violation};
use sttcp::server::{AppCrashMode, ByzantineHbMode, StTcpServer};

use crate::apps::{CommitStreamApp, ReqRespApp, StreamApp};
use crate::client::ClientWorkload;
use crate::scenario::{Scenario, ScenarioBuilder};

/// Which server a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The configured primary.
    Primary,
    /// The configured backup.
    Backup,
}

impl Side {
    /// The Ethernet link belonging to this side.
    pub fn link(self) -> LinkSel {
        match self {
            Side::Primary => LinkSel::Primary,
            Side::Backup => LinkSel::Backup,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Primary => write!(f, "primary"),
            Side::Backup => write!(f, "backup"),
        }
    }
}

/// Which switch link a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkSel {
    /// Client ↔ switch (the client host doubles as the gateway).
    Client,
    /// Primary ↔ switch.
    Primary,
    /// Backup ↔ switch.
    Backup,
}

impl fmt::Display for LinkSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkSel::Client => write!(f, "client"),
            LinkSel::Primary => write!(f, "primary"),
            LinkSel::Backup => write!(f, "backup"),
        }
    }
}

/// One injectable fault or restore action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosAction {
    /// HW/OS crash: immediate power loss (Table 1 row 1).
    Crash(Side),
    /// Power a crashed node back on. It reboots as a passive cold
    /// standby (state lost), never as a second active server.
    Reboot(Side),
    /// NIC failure on a server (Table 1 row 4).
    NicDown(Side),
    /// NIC repair.
    NicUp(Side),
    /// Cable cut on a switch link.
    LinkCut(LinkSel),
    /// Cable repair.
    LinkRestore(LinkSel),
    /// Probabilistic frame loss (percent, both directions) on a link.
    LinkLoss(LinkSel, u8),
    /// End of a loss episode.
    LinkLossEnd(LinkSel),
    /// Drop the next `n` service-bound TCP frames on the backup's tap
    /// (Table 1 row 5 — absorbed by missed-byte recovery).
    DropTap(u32),
    /// Flip one bit in each of the next `n` frames delivered toward the
    /// selected node. Checksums must turn this into loss, never action.
    CorruptFrames(LinkSel, u32),
    /// Serial (null-modem) cable failure.
    SerialFail,
    /// Serial cable repair.
    SerialRestore,
    /// Application crash on a server (Table 1 rows 2-3).
    AppCrash(Side, AppCrashMode),
    /// Transmit each of the next `n` frames toward the selected node
    /// twice (flapping switch port). Duplicates must be absorbed, never
    /// acted on twice.
    Dup(LinkSel, u32),
    /// Swap each of the next `n` frames toward the selected node with
    /// its successor (multipath segment). Out-of-order heartbeats and
    /// TCP segments must be absorbed, never mis-verdicted.
    Reorder(LinkSel, u32),
    /// Per-frame uniform delivery jitter up to the given bound in
    /// milliseconds, both directions (congested segment).
    Jitter(LinkSel, u16),
    /// End of a jitter episode.
    JitterEnd(LinkSel),
    /// Byzantine heartbeat source: the node keeps sending CRC-valid but
    /// semantically corrupt heartbeats. Receivers must quarantine the
    /// stream; the liar's own inbound evidence stays untouched, so it
    /// must never fire a verdict against its honest peer.
    ByzantineHb(Side, ByzantineHbMode),
}

impl ChaosAction {
    /// Every verb in the fault grammar, in [`TimedAction`] display order
    /// (coverage tables iterate over this).
    pub const KINDS: [&'static str; 18] = [
        "crash",
        "reboot",
        "nic-down",
        "nic-up",
        "cut",
        "restore",
        "loss",
        "loss-end",
        "drop-tap",
        "corrupt",
        "serial-fail",
        "serial-restore",
        "app-crash",
        "dup",
        "reorder",
        "jitter",
        "jitter-end",
        "byz-hb",
    ];

    /// The action's verb — its grammar "kind", with side/link/amount
    /// arguments erased (coverage accounting).
    pub fn kind(self) -> &'static str {
        match self {
            ChaosAction::Crash(_) => "crash",
            ChaosAction::Reboot(_) => "reboot",
            ChaosAction::NicDown(_) => "nic-down",
            ChaosAction::NicUp(_) => "nic-up",
            ChaosAction::LinkCut(_) => "cut",
            ChaosAction::LinkRestore(_) => "restore",
            ChaosAction::LinkLoss(..) => "loss",
            ChaosAction::LinkLossEnd(_) => "loss-end",
            ChaosAction::DropTap(_) => "drop-tap",
            ChaosAction::CorruptFrames(..) => "corrupt",
            ChaosAction::SerialFail => "serial-fail",
            ChaosAction::SerialRestore => "serial-restore",
            ChaosAction::AppCrash(..) => "app-crash",
            ChaosAction::Dup(..) => "dup",
            ChaosAction::Reorder(..) => "reorder",
            ChaosAction::Jitter(..) => "jitter",
            ChaosAction::JitterEnd(_) => "jitter-end",
            ChaosAction::ByzantineHb(..) => "byz-hb",
        }
    }
}

/// A fault action with its injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimedAction {
    /// Virtual milliseconds after world start.
    pub at_ms: u64,
    /// What to inject.
    pub action: ChaosAction,
}

impl fmt::Display for TimedAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} ", self.at_ms)?;
        match self.action {
            ChaosAction::Crash(s) => write!(f, "crash {s}"),
            ChaosAction::Reboot(s) => write!(f, "reboot {s}"),
            ChaosAction::NicDown(s) => write!(f, "nic-down {s}"),
            ChaosAction::NicUp(s) => write!(f, "nic-up {s}"),
            ChaosAction::LinkCut(l) => write!(f, "cut {l}"),
            ChaosAction::LinkRestore(l) => write!(f, "restore {l}"),
            ChaosAction::LinkLoss(l, pct) => write!(f, "loss {l} {pct}"),
            ChaosAction::LinkLossEnd(l) => write!(f, "loss-end {l}"),
            ChaosAction::DropTap(n) => write!(f, "drop-tap {n}"),
            ChaosAction::CorruptFrames(l, n) => write!(f, "corrupt {l} {n}"),
            ChaosAction::SerialFail => write!(f, "serial-fail"),
            ChaosAction::SerialRestore => write!(f, "serial-restore"),
            ChaosAction::AppCrash(s, mode) => {
                let m = match mode {
                    AppCrashMode::SilentNoCleanup => "silent",
                    AppCrashMode::CleanupFin => "fin",
                    AppCrashMode::CleanupRst => "rst",
                };
                write!(f, "app-crash {s} {m}")
            }
            ChaosAction::Dup(l, n) => write!(f, "dup {l} {n}"),
            ChaosAction::Reorder(l, n) => write!(f, "reorder {l} {n}"),
            ChaosAction::Jitter(l, ms) => write!(f, "jitter {l} {ms}"),
            ChaosAction::JitterEnd(l) => write!(f, "jitter-end {l}"),
            ChaosAction::ByzantineHb(s, mode) => {
                let m = match mode {
                    ByzantineHbMode::Freeze => "freeze",
                    ByzantineHbMode::Regress => "regress",
                };
                write!(f, "byz-hb {s} {m}")
            }
        }
    }
}

/// Error from parsing a schedule string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError(String);

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault schedule: {}", self.0)
    }
}

impl std::error::Error for ScheduleParseError {}

fn parse_side(s: &str) -> Result<Side, ScheduleParseError> {
    match s {
        "primary" => Ok(Side::Primary),
        "backup" => Ok(Side::Backup),
        _ => Err(ScheduleParseError(format!("unknown side {s:?}"))),
    }
}

fn parse_link(s: &str) -> Result<LinkSel, ScheduleParseError> {
    match s {
        "client" => Ok(LinkSel::Client),
        "primary" => Ok(LinkSel::Primary),
        "backup" => Ok(LinkSel::Backup),
        _ => Err(ScheduleParseError(format!("unknown link {s:?}"))),
    }
}

fn parse_num<T: FromStr>(s: &str) -> Result<T, ScheduleParseError> {
    s.parse()
        .map_err(|_| ScheduleParseError(format!("bad number {s:?}")))
}

impl FromStr for TimedAction {
    type Err = ScheduleParseError;

    fn from_str(s: &str) -> Result<TimedAction, ScheduleParseError> {
        let mut words = s.split_whitespace();
        let at = words
            .next()
            .ok_or_else(|| ScheduleParseError("empty action".into()))?;
        let at_ms: u64 = at
            .strip_prefix('@')
            .ok_or_else(|| ScheduleParseError(format!("expected @<ms>, got {at:?}")))
            .and_then(parse_num)?;
        let verb = words
            .next()
            .ok_or_else(|| ScheduleParseError(format!("missing verb after {at:?}")))?;
        let mut arg = || {
            words
                .next()
                .ok_or_else(|| ScheduleParseError(format!("verb {verb:?} needs an argument")))
        };
        let action = match verb {
            "crash" => ChaosAction::Crash(parse_side(arg()?)?),
            "reboot" => ChaosAction::Reboot(parse_side(arg()?)?),
            "nic-down" => ChaosAction::NicDown(parse_side(arg()?)?),
            "nic-up" => ChaosAction::NicUp(parse_side(arg()?)?),
            "cut" => ChaosAction::LinkCut(parse_link(arg()?)?),
            "restore" => ChaosAction::LinkRestore(parse_link(arg()?)?),
            "loss" => ChaosAction::LinkLoss(parse_link(arg()?)?, parse_num(arg()?)?),
            "loss-end" => ChaosAction::LinkLossEnd(parse_link(arg()?)?),
            "drop-tap" => ChaosAction::DropTap(parse_num(arg()?)?),
            "corrupt" => ChaosAction::CorruptFrames(parse_link(arg()?)?, parse_num(arg()?)?),
            "serial-fail" => ChaosAction::SerialFail,
            "serial-restore" => ChaosAction::SerialRestore,
            "app-crash" => {
                let side = parse_side(arg()?)?;
                let mode = match arg()? {
                    "silent" => AppCrashMode::SilentNoCleanup,
                    "fin" => AppCrashMode::CleanupFin,
                    "rst" => AppCrashMode::CleanupRst,
                    m => return Err(ScheduleParseError(format!("unknown crash mode {m:?}"))),
                };
                ChaosAction::AppCrash(side, mode)
            }
            "dup" => ChaosAction::Dup(parse_link(arg()?)?, parse_num(arg()?)?),
            "reorder" => ChaosAction::Reorder(parse_link(arg()?)?, parse_num(arg()?)?),
            "jitter" => ChaosAction::Jitter(parse_link(arg()?)?, parse_num(arg()?)?),
            "jitter-end" => ChaosAction::JitterEnd(parse_link(arg()?)?),
            "byz-hb" => {
                let side = parse_side(arg()?)?;
                let mode = match arg()? {
                    "freeze" => ByzantineHbMode::Freeze,
                    "regress" => ByzantineHbMode::Regress,
                    m => return Err(ScheduleParseError(format!("unknown byz mode {m:?}"))),
                };
                ChaosAction::ByzantineHb(side, mode)
            }
            _ => return Err(ScheduleParseError(format!("unknown verb {verb:?}"))),
        };
        if let Some(extra) = words.next() {
            return Err(ScheduleParseError(format!("trailing token {extra:?}")));
        }
        Ok(TimedAction { at_ms, action })
    }
}

/// A serializable, replayable multi-fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    /// The actions, sorted by injection time.
    pub actions: Vec<TimedAction>,
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.actions.is_empty() {
            return write!(f, "(no faults)");
        }
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultSchedule {
    type Err = ScheduleParseError;

    fn from_str(s: &str) -> Result<FaultSchedule, ScheduleParseError> {
        let mut sched = FaultSchedule::default();
        for part in s.split([';', '\n']) {
            let part = part.trim();
            if part.is_empty() || part == "(no faults)" {
                continue;
            }
            sched.actions.push(part.parse()?);
        }
        sched.sort();
        Ok(sched)
    }
}

impl FaultSchedule {
    /// Adds an action, keeping time order.
    pub fn push(&mut self, at_ms: u64, action: ChaosAction) {
        self.actions.push(TimedAction { at_ms, action });
        self.sort();
    }

    /// Restores time order (stable, so same-time actions keep their
    /// relative order).
    pub fn sort(&mut self) {
        self.actions.sort_by_key(|a| a.at_ms);
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Schedules every action into a built scenario's world.
    pub fn apply(&self, s: &mut Scenario) {
        for ta in &self.actions {
            let at = SimTime::from_millis(ta.at_ms);
            let node = |side: Side| -> NodeId {
                match side {
                    Side::Primary => s.primary,
                    Side::Backup => s.backup,
                }
            };
            let link = |sel: LinkSel| -> LinkId {
                match sel {
                    LinkSel::Client => s.link_client,
                    LinkSel::Primary => s.link_primary,
                    LinkSel::Backup => s.link_backup,
                }
            };
            match ta.action {
                ChaosAction::Crash(side) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| w.crash_node(n));
                }
                ChaosAction::Reboot(side) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| {
                        if !w.is_powered(n) {
                            w.restore_node(n);
                        }
                    });
                }
                ChaosAction::NicDown(side) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| w.fail_nic(n, NicId(0)));
                }
                ChaosAction::NicUp(side) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| w.restore_nic(n, NicId(0)));
                }
                ChaosAction::LinkCut(sel) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| w.cut_link(l));
                }
                ChaosAction::LinkRestore(sel) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| w.restore_link(l));
                }
                ChaosAction::LinkLoss(sel, pct) => {
                    let l = link(sel);
                    let p = f64::from(pct.min(100)) / 100.0;
                    s.world.schedule(at, move |w| {
                        w.set_link_loss(l, LinkDir::AtoB, p);
                        w.set_link_loss(l, LinkDir::BtoA, p);
                    });
                }
                ChaosAction::LinkLossEnd(sel) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| {
                        w.set_link_loss(l, LinkDir::AtoB, 0.0);
                        w.set_link_loss(l, LinkDir::BtoA, 0.0);
                    });
                }
                ChaosAction::DropTap(n) => {
                    s.drop_backup_tap_at(at, u64::from(n));
                }
                ChaosAction::CorruptFrames(sel, n) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| {
                        w.corrupt_frames(l, LinkDir::BtoA, u64::from(n))
                    });
                }
                ChaosAction::SerialFail => {
                    let ser = s.serial;
                    s.world.schedule(at, move |w| w.fail_serial(ser));
                }
                ChaosAction::SerialRestore => {
                    let ser = s.serial;
                    s.world.schedule(at, move |w| w.restore_serial(ser));
                }
                ChaosAction::AppCrash(side, mode) => {
                    s.crash_app_at(node(side), at, mode);
                }
                ChaosAction::Dup(sel, n) => {
                    let l = link(sel);
                    s.world
                        .schedule(at, move |w| w.dup_frames(l, LinkDir::BtoA, u64::from(n)));
                }
                ChaosAction::Reorder(sel, n) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| {
                        w.reorder_frames(l, LinkDir::BtoA, u64::from(n))
                    });
                }
                ChaosAction::Jitter(sel, ms) => {
                    let l = link(sel);
                    let max = SimDuration::from_millis(u64::from(ms));
                    s.world.schedule(at, move |w| {
                        w.set_link_jitter(l, LinkDir::AtoB, max);
                        w.set_link_jitter(l, LinkDir::BtoA, max);
                    });
                }
                ChaosAction::JitterEnd(sel) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| {
                        w.set_link_jitter(l, LinkDir::AtoB, SimDuration::ZERO);
                        w.set_link_jitter(l, LinkDir::BtoA, SimDuration::ZERO);
                    });
                }
                ChaosAction::ByzantineHb(side, mode) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| {
                        w.note_fault(format!("byzantine hb ({mode:?}) on n{}", n.0));
                        if let Some(server) = w.node_mut::<StTcpServer>(n) {
                            server.inject_byzantine_hb(mode);
                        }
                    });
                }
            }
        }
    }

    /// Derives what this schedule makes legitimately possible — the
    /// [`Expectation`] fed to the invariant checker. Deliberately
    /// conservative toward "possible": an over-strict expectation would
    /// report legitimate runs as violations, an over-lax one merely
    /// checks less.
    pub fn expectation(&self) -> Expectation {
        use ChaosAction::*;

        // Loss bursts that recovery absorbs without any verdict. Beyond
        // this the primary's extended receive buffer may overflow and
        // escalation is legitimate.
        const QUIET_BURST: u32 = 30;

        // Could a correct detector have been provoked into a verdict?
        // Corruption of *any* size counts: a corruption budget is a frame
        // count, not a time window, so when traffic is sparse a handful of
        // corrupted (CRC-dropped) frames can swallow seconds' worth of
        // consecutive heartbeats or gateway pings — exactly what a real
        // blackout looks like to a correct detector.
        let verdicts_possible = self.actions.iter().any(|a| match a.action {
            Crash(_) | AppCrash(..) | NicDown(_) | NicUp(_) | LinkCut(_) | LinkRestore(_)
            | LinkLoss(..) | LinkLossEnd(_) | Reboot(_) | CorruptFrames(..) => true,
            DropTap(n) => n > QUIET_BURST,
            SerialFail | SerialRestore => false,
            // A byzantine sender's heartbeats are quarantined, so its
            // honest peer legitimately sees both links dark and condemns
            // it — that verdict is correct, not a false positive.
            ByzantineHb(..) => true,
            // Duplication and reordering are absorbed by TCP and the
            // checksummed/sequenced control formats; jitter episodes stay
            // far below the heartbeat timeout. None may provoke a verdict.
            Dup(..) | Reorder(..) | Jitter(..) | JitterEnd(_) => false,
        });

        // Could a side have ended up dead — crashed by the schedule, or
        // condemned and STONITHed by its peer after an impairment?
        let impaired = |side: Side| {
            self.actions.iter().any(|a| match a.action {
                Crash(s) | AppCrash(s, _) | NicDown(s) => s == side,
                // A byzantine node gets condemned and STONITHed by its
                // honest peer, so it can end up just as dead as a crash.
                ByzantineHb(s, _) => s == side,
                LinkCut(l) | LinkLoss(l, _) => l == side.link(),
                _ => false,
            })
        };

        // Serial dead while the servers' IP heartbeat path is also
        // breakable: both sides may (correctly) condemn each other.
        let split_brain = self.actions.iter().any(|a| matches!(a.action, SerialFail))
            && self.actions.iter().any(|a| {
                matches!(
                    a.action,
                    NicDown(_)
                        | LinkCut(LinkSel::Primary | LinkSel::Backup)
                        | LinkLoss(LinkSel::Primary | LinkSel::Backup, _)
                )
            });

        // Client path state at end of schedule (order matters).
        let mut client_cut = false;
        let mut lossy_at_end = false;
        for a in &self.actions {
            match a.action {
                LinkCut(LinkSel::Client) => client_cut = true,
                LinkRestore(LinkSel::Client) => client_cut = false,
                LinkLoss(..) => lossy_at_end = true,
                LinkLossEnd(_) => lossy_at_end = false,
                _ => {}
            }
        }

        // Budgeted corruption (and probabilistic loss) on the request
        // path interacts with RTO backoff: every retransmission of the
        // same segment can eat one budget unit while the RTO doubles, so
        // even a small burst can legally stall the client past any
        // finite horizon. Completion cannot be demanded.
        let request_path_unreliable = self.actions.iter().any(|a| {
            matches!(
                a.action,
                CorruptFrames(LinkSel::Client | LinkSel::Primary, _)
                    | LinkLoss(LinkSel::Client | LinkSel::Primary, _)
            )
        });

        // Bytes the primary acked can be lost to the backup forever only
        // if the tap was impaired *and* a takeover was possible. The
        // primary can die by direct impairment, or by STONITH from a
        // backup whose view of the primary's heartbeats went dark —
        // corruption or loss toward the backup eats the primary's IP
        // heartbeats, and under sparse traffic a frame budget is an
        // unbounded blackout in time.
        let tap_impaired = self.actions.iter().any(|a| {
            matches!(
                a.action,
                DropTap(_)
                    | CorruptFrames(LinkSel::Backup, _)
                    | LinkLoss(LinkSel::Backup, _)
                    | LinkCut(LinkSel::Backup)
                    | NicDown(Side::Backup)
            )
        });
        let primary_may_die = impaired(Side::Primary)
            || self.actions.iter().any(|a| {
                matches!(
                    a.action,
                    CorruptFrames(LinkSel::Backup, _) | LinkLoss(LinkSel::Backup, _)
                )
            });
        let unrecoverable_gap_possible = tap_impaired && primary_may_die;

        let service_may_be_lost = (impaired(Side::Primary) && impaired(Side::Backup))
            || split_brain
            || client_cut
            || request_path_unreliable
            // A loss episode never switched off can stall TCP past any
            // horizon; don't demand completion.
            || lossy_at_end
            // After a takeover the backup's own link *is* the client's
            // path to the service, so a drop/corruption budget installed
            // on the tap now starves client traffic instead — and the
            // client's RTO backoff can stretch a small frame budget past
            // any finite horizon. With the primary able to die, a tap
            // impairment forfeits the completion guarantee.
            || (tap_impaired && primary_may_die);

        let abortive_close_possible = self
            .actions
            .iter()
            .any(|a| matches!(a.action, AppCrash(_, AppCrashMode::CleanupRst)));

        // Stalls are boundable only when nothing can hold the client's
        // TCP in RTO backoff for schedule-dependent lengths of time. A
        // tap impairment plus a dead primary qualifies too: the tap
        // budget lands on the client's path to the new active server and
        // drains at RTO pace, not wall-clock pace.
        let unbounded_stall = self.actions.iter().any(|a| {
            matches!(
                a.action,
                LinkLoss(..) | CorruptFrames(..) | LinkCut(LinkSel::Client)
            )
        }) || (tap_impaired && primary_may_die);
        let max_stall = if unbounded_stall {
            None
        } else {
            // Worst bounded path: detection (heartbeat timeout or app-lag
            // confirmation) + STONITH + takeover + client RTO backoff
            // accumulated while the service was silent.
            Some(SimDuration::from_secs(15))
        };

        // The liar-containment invariant (the byzantine side must never
        // fire a verdict) is only sound when nothing else in the schedule
        // could hand the liar legitimate inbound evidence against its
        // peer: apply it iff *every* action is a byzantine injection on
        // one single side.
        let mut byz_side = None;
        let mut byz_pure = !self.actions.is_empty();
        for a in &self.actions {
            match a.action {
                ByzantineHb(s, _) => {
                    if *byz_side.get_or_insert(s) != s {
                        byz_pure = false;
                    }
                }
                _ => byz_pure = false,
            }
        }
        let byzantine = match (byz_pure, byz_side) {
            (true, Some(Side::Primary)) => Some(Role::Primary),
            (true, Some(Side::Backup)) => Some(Role::Backup),
            _ => None,
        };

        Expectation {
            service_may_be_lost,
            unrecoverable_gap_possible,
            abortive_close_possible,
            verdicts_possible,
            max_stall,
            byzantine,
            // Whether a reboot re-integrates (second failure epoch
            // possible) is a *configuration* property, not a schedule
            // property: the run harness overrides this from
            // [`ChaosOptions::reintegrate`].
            reintegrate: false,
        }
    }

    /// Generates a coherent seeded schedule of 1–4 faults. Same seed,
    /// same schedule.
    pub fn generate(seed: u64) -> FaultSchedule {
        Self::generate_with(seed, 1, 4)
    }

    /// Generates a single-fault schedule (plus any paired restore).
    pub fn generate_single(seed: u64) -> FaultSchedule {
        Self::generate_with(seed, 1, 1)
    }

    /// Generates a double-fault schedule: a first fault (restored where
    /// the fault class allows it) followed by a second, independent
    /// fault — the classic "failure during repair" shape.
    pub fn generate_double(seed: u64) -> FaultSchedule {
        Self::generate_with(seed, 2, 2)
    }

    /// Generates a `reintegrate-then-fail` schedule: crash one side, warm
    /// reboot it (with [`ChaosOptions::reintegrate`] set, it rejoins the
    /// live connections), then — after the join has had time to converge —
    /// crash the *other* side, so only a successfully re-integrated backup
    /// can keep the service alive through the second failure.
    pub fn generate_reintegrate(seed: u64) -> FaultSchedule {
        let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5E1A7);
        let first = if rng.chance(0.5) {
            Side::Primary
        } else {
            Side::Backup
        };
        let second = match first {
            Side::Primary => Side::Backup,
            Side::Backup => Side::Primary,
        };
        let t1 = 250 + rng.range_u64(0, 2_000);
        let reboot = t1 + 300 + rng.range_u64(0, 1_200);
        let t2 = reboot + 2_500 + rng.range_u64(0, 2_500);
        let mut sched = FaultSchedule::default();
        sched.push(t1, ChaosAction::Crash(first));
        sched.push(reboot, ChaosAction::Reboot(first));
        sched.push(t2, ChaosAction::Crash(second));
        sched
    }

    /// Generates a pool chaos schedule: kill the active, usually warm-boot
    /// it back (with re-integration it rejoins as a fresh backup under a
    /// new rank), then — once the pool has settled — kill the next active
    /// too. In a pool scenario `Side::Primary` addresses the rank-0
    /// member and `Side::Backup` the rank-1 member (see
    /// [`crate::pool::PoolScenario`]); deeper members are never targeted
    /// directly, so every takeover in the chain must be quorum-fenced by
    /// the survivors.
    pub fn generate_pool(seed: u64) -> FaultSchedule {
        let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x9001D);
        let mut sched = FaultSchedule::default();
        let t1 = 250 + rng.range_u64(0, 2_000);
        sched.push(t1, ChaosAction::Crash(Side::Primary));
        let mut settled = t1;
        if rng.chance(0.7) {
            let reboot = t1 + 300 + rng.range_u64(0, 1_200);
            sched.push(reboot, ChaosAction::Reboot(Side::Primary));
            settled = reboot;
        }
        let t2 = settled + 2_500 + rng.range_u64(0, 2_500);
        sched.push(t2, ChaosAction::Crash(Side::Backup));
        if rng.chance(0.4) {
            let reboot = t2 + 300 + rng.range_u64(0, 1_200);
            sched.push(reboot, ChaosAction::Reboot(Side::Backup));
        }
        sched
    }

    /// Generates a byzantine-heartbeat schedule: one side starts lying in
    /// its heartbeats (CRC-valid, semantically corrupt) mid-transfer. The
    /// honest side must quarantine the stream and condemn the liar; the
    /// liar must never condemn the honest side.
    pub fn generate_byzantine(seed: u64) -> FaultSchedule {
        let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xB12A7);
        let side = if rng.chance(0.5) {
            Side::Primary
        } else {
            Side::Backup
        };
        let mode = if rng.chance(0.5) {
            ByzantineHbMode::Freeze
        } else {
            ByzantineHbMode::Regress
        };
        let t = 400 + rng.range_u64(0, 3_000);
        let mut sched = FaultSchedule::default();
        sched.push(t, ChaosAction::ByzantineHb(side, mode));
        sched
    }

    /// Seeded generation with a fault-count range (paired restores ride
    /// along and don't count).
    pub fn generate_with(seed: u64, min_faults: usize, max_faults: usize) -> FaultSchedule {
        let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4A05);
        let n = min_faults + rng.index(max_faults - min_faults + 1);
        let mut sched = FaultSchedule::default();
        let mut crashed = [false; 2];
        let mut app_crashed = [false; 2];
        let mut nic_down = [false; 2];
        let mut cut = [false; 3];
        let mut serial_failed = false;

        // Fault times cluster where the protocol is most fragile: the
        // connection handshake (the client connects at t = 100 ms), the
        // steady transfer, and the late/FIN window.
        let pick_time = |rng: &mut SimRng| -> u64 {
            match rng.index(10) {
                0..=2 => 60 + rng.range_u64(0, 190),    // handshake
                3..=7 => 250 + rng.range_u64(0, 3_750), // steady state
                _ => 4_000 + rng.range_u64(0, 4_000),   // late / FIN
            }
        };
        let side_of = |i: usize| if i == 0 { Side::Primary } else { Side::Backup };
        let link_of = |i: usize| match i {
            0 => LinkSel::Client,
            1 => LinkSel::Primary,
            _ => LinkSel::Backup,
        };

        for _ in 0..n {
            let t = pick_time(&mut rng);
            match rng.index(11) {
                0 => {
                    // HW/OS crash; sometimes with a later reboot (which
                    // must stay a passive cold standby).
                    let i = rng.index(2);
                    let i = if crashed[i] { 1 - i } else { i };
                    if crashed[i] {
                        sched.push(t, ChaosAction::DropTap(1 + rng.index(QUIET_TAP) as u32));
                        continue;
                    }
                    crashed[i] = true;
                    sched.push(t, ChaosAction::Crash(side_of(i)));
                    if rng.chance(0.4) {
                        let dt = 300 + rng.range_u64(0, 2_000);
                        sched.push(t + dt, ChaosAction::Reboot(side_of(i)));
                    }
                }
                1 => {
                    let i = rng.index(2);
                    if app_crashed[i] || crashed[i] {
                        sched.push(t, ChaosAction::SerialFail);
                        serial_failed = true;
                        continue;
                    }
                    app_crashed[i] = true;
                    let mode = [
                        AppCrashMode::SilentNoCleanup,
                        AppCrashMode::CleanupFin,
                        AppCrashMode::CleanupRst,
                    ][rng.index(3)];
                    sched.push(t, ChaosAction::AppCrash(side_of(i), mode));
                }
                2 => {
                    let i = rng.index(2);
                    if nic_down[i] {
                        sched.push(t, ChaosAction::NicUp(side_of(i)));
                        nic_down[i] = false;
                        continue;
                    }
                    nic_down[i] = true;
                    sched.push(t, ChaosAction::NicDown(side_of(i)));
                    if rng.chance(0.5) {
                        let dt = 400 + rng.range_u64(0, 2_500);
                        sched.push(t + dt, ChaosAction::NicUp(side_of(i)));
                        nic_down[i] = false;
                    }
                }
                3 => {
                    let i = rng.index(3);
                    if cut[i] {
                        sched.push(t, ChaosAction::LinkRestore(link_of(i)));
                        cut[i] = false;
                        continue;
                    }
                    cut[i] = true;
                    sched.push(t, ChaosAction::LinkCut(link_of(i)));
                    if rng.chance(0.6) {
                        let dt = 400 + rng.range_u64(0, 2_500);
                        sched.push(t + dt, ChaosAction::LinkRestore(link_of(i)));
                        cut[i] = false;
                    }
                }
                4 => {
                    // Loss episodes always end: unbounded loss proves
                    // nothing a cut doesn't, and only blurs expectations.
                    let l = link_of(rng.index(3));
                    let pct = 10 + rng.index(51) as u8;
                    sched.push(t, ChaosAction::LinkLoss(l, pct));
                    let dt = 200 + rng.range_u64(0, 1_300);
                    sched.push(t + dt, ChaosAction::LinkLossEnd(l));
                }
                5 => {
                    sched.push(t, ChaosAction::DropTap(1 + rng.index(QUIET_TAP) as u32));
                }
                6 => {
                    let l = link_of(rng.index(3));
                    sched.push(t, ChaosAction::CorruptFrames(l, 1 + rng.index(12) as u32));
                }
                7 => {
                    if serial_failed {
                        sched.push(t, ChaosAction::SerialRestore);
                        serial_failed = false;
                    } else {
                        serial_failed = true;
                        sched.push(t, ChaosAction::SerialFail);
                        if rng.chance(0.5) {
                            let dt = 500 + rng.range_u64(0, 3_000);
                            sched.push(t + dt, ChaosAction::SerialRestore);
                            serial_failed = false;
                        }
                    }
                }
                8 => {
                    let l = link_of(rng.index(3));
                    sched.push(t, ChaosAction::Dup(l, 1 + rng.index(8) as u32));
                }
                9 => {
                    let l = link_of(rng.index(3));
                    sched.push(t, ChaosAction::Reorder(l, 1 + rng.index(8) as u32));
                }
                _ => {
                    // Jitter episodes always end, and the bound stays far
                    // below the 600 ms heartbeat timeout.
                    let l = link_of(rng.index(3));
                    let ms = 1 + rng.index(30) as u16;
                    sched.push(t, ChaosAction::Jitter(l, ms));
                    let dt = 200 + rng.range_u64(0, 1_300);
                    sched.push(t + dt, ChaosAction::JitterEnd(l));
                }
            }
        }
        sched.sort();
        sched
    }
}

/// Largest tap burst recovery must absorb silently (see
/// [`FaultSchedule::expectation`]).
const QUIET_TAP: usize = 30;

/// Which application/traffic pair a chaos or explore case drives — the
/// first slice of the ROADMAP app zoo. Every workload keeps the client's
/// end-to-end byte verification: `Download` and `CommitStream` check the
/// fixed pattern, `ReqResp` checks each response against the known
/// deterministic transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChaosWorkload {
    /// Smooth verifying download from [`StreamApp`] (the original chaos
    /// surface).
    #[default]
    Download,
    /// Interactive request/response against [`ReqRespApp`]: periodic
    /// request lines, each response verified.
    ReqResp,
    /// Bursty download from [`CommitStreamApp`]: the replicas' app
    /// positions sit still between commits, then jump together.
    CommitStream,
}

impl ChaosWorkload {
    /// Every workload (CLI sweeps, coverage tables).
    pub const ALL: [ChaosWorkload; 3] = [
        ChaosWorkload::Download,
        ChaosWorkload::ReqResp,
        ChaosWorkload::CommitStream,
    ];

    /// Stable identifier (CLI values, report keys).
    pub fn key(self) -> &'static str {
        match self {
            ChaosWorkload::Download => "download",
            ChaosWorkload::ReqResp => "reqresp",
            ChaosWorkload::CommitStream => "commit-stream",
        }
    }
}

impl fmt::Display for ChaosWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

impl FromStr for ChaosWorkload {
    type Err = ScheduleParseError;

    fn from_str(s: &str) -> Result<ChaosWorkload, ScheduleParseError> {
        ChaosWorkload::ALL
            .into_iter()
            .find(|w| w.key() == s)
            .ok_or_else(|| ScheduleParseError(format!("unknown workload {s:?}")))
    }
}

/// Knobs for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Download size the verifying client requests.
    pub total_bytes: u64,
    /// Virtual-time horizon for the run.
    pub horizon: SimDuration,
    /// Dump the world trace to stderr after the run (debugging).
    pub trace: bool,
    /// Trace ring-buffer bound. Sweeps run thousands of worlds, so the
    /// default caps each trace; the cap is ignored (trace unbounded) when
    /// `trace` asks for a full dump.
    pub trace_capacity: Option<usize>,
    /// Run the servers with [`StTcpConfig::reintegrate`] set: a rebooted
    /// node warm-boots and rejoins the live connections instead of staying
    /// a cold standby. The invariant checker then allows a second failure
    /// epoch.
    pub reintegrate: bool,
    /// Which application/traffic pair to run.
    pub workload: ChaosWorkload,
    /// Capture a flight-recorder snapshot into the report even when no
    /// invariant was violated (demos attach a dump unconditionally; the
    /// hunt only pays for snapshots on violations).
    pub flight_always: bool,
    /// Tail window for captured flight snapshots, in milliseconds
    /// (`None` keeps everything the per-host rings retained).
    pub flight_window_ms: Option<u64>,
    /// Run the servers with [`StTcpConfig::hb_delta`] set: heartbeats
    /// carry only connections whose counters changed since the last
    /// acknowledged frame, with full-state resync on epoch mismatch.
    pub hb_delta: bool,
    /// Run the servers with [`StTcpConfig::hb_batch`] set: heartbeat
    /// rounds larger than this many connection records are split into
    /// multi-part v3 batch envelopes (`0` keeps single-frame rounds).
    pub hb_batch: usize,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions {
            total_bytes: 192 * 1024,
            horizon: SimDuration::from_secs(40),
            trace: false,
            trace_capacity: Some(4096),
            reintegrate: false,
            workload: ChaosWorkload::Download,
            flight_always: false,
            flight_window_ms: Some(2_000),
            hb_delta: false,
            hb_batch: 0,
        }
    }
}

impl ChaosOptions {
    /// Smaller/faster settings for smoke sweeps (CI).
    pub fn quick() -> ChaosOptions {
        ChaosOptions {
            total_bytes: 48 * 1024,
            horizon: SimDuration::from_secs(25),
            ..ChaosOptions::default()
        }
    }
}

/// Everything a chaos run produced, for classification and reproduction.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The checker's classification.
    pub outcome: Outcome,
    /// Violated invariants (empty unless `outcome` is `Violation`).
    pub violations: Vec<Violation>,
    /// The client as the checker saw it.
    pub client: ClientView,
    /// The primary's event log.
    pub primary_events: Vec<StTcpEvent>,
    /// The backup's event log.
    pub backup_events: Vec<StTcpEvent>,
    /// `(start, end)` of the longest client stall, when measurable — the
    /// window a failover-phase timeline anchors to.
    pub stall_window: Option<(SimTime, SimTime)>,
    /// Every injected fault, as `(time, description)` in injection order
    /// (from the world's uncapped fault-episode log).
    pub faults: Vec<(SimTime, String)>,
    /// Flight-recorder snapshot, captured when the run violated an
    /// invariant (or unconditionally under
    /// [`ChaosOptions::flight_always`]). Deliberately excluded from
    /// [`ChaosReport::fingerprint`]: the fingerprint digests protocol
    /// observables, and the flight tail is derived from them.
    pub flight: Option<simnet::flight::FlightSnapshot>,
}

impl ChaosReport {
    /// A stable digest of everything observable — two runs of the same
    /// `(seed, schedule)` must produce equal fingerprints (deterministic
    /// replay is what makes shrinking sound).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(format!("{:?}", self.outcome).as_bytes());
        eat(format!("{:?}", self.violations).as_bytes());
        eat(format!("{:?}", self.client).as_bytes());
        eat(format!("{:?}", self.primary_events).as_bytes());
        eat(format!("{:?}", self.backup_events).as_bytes());
        h
    }
}

/// The ST-TCP configuration every chaos case runs under. Public so the
/// hunt harness can derive per-detector bounds from the same knobs.
pub fn chaos_config() -> StTcpConfig {
    StTcpConfig {
        app_max_lag_time: SimDuration::from_secs(1),
        max_delay_fin: SimDuration::from_secs(5),
        ..StTcpConfig::default()
    }
}

/// When the world powered this node off, reconstructed from the schedule
/// (explicit crashes) and the peer's STONITH log.
fn powered_off_at(
    schedule: &FaultSchedule,
    side: Side,
    me: &StTcpServer,
    peer_events: &[StTcpEvent],
) -> Option<SimTime> {
    if !me.was_powered_off() {
        return None;
    }
    let scheduled = schedule
        .actions
        .iter()
        .filter(|a| matches!(a.action, ChaosAction::Crash(s) if s == side))
        .map(|a| SimTime::from_millis(a.at_ms))
        .min();
    let stonithed = peer_events.iter().find_map(|e| match e {
        StTcpEvent::StonithIssued { at } => Some(*at),
        _ => None,
    });
    match (scheduled, stonithed) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// The `(server app factory, client workload)` pair for one chaos
/// workload. `total_bytes` sizes the download flavours; `ReqResp` derives
/// a request count from it so every workload scales with the same knob.
fn workload_pair(
    workload: ChaosWorkload,
    total_bytes: u64,
) -> (crate::scenario::AppMaker, ClientWorkload) {
    match workload {
        ChaosWorkload::Download => (
            Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
            ClientWorkload::Download { total: total_bytes },
        ),
        ChaosWorkload::ReqResp => (
            Rc::new(|| Box::new(ReqRespApp::new()) as _),
            ClientWorkload::ReqResp {
                period: SimDuration::from_millis(50),
                // ~1 request per KiB of the download budget, capped so the
                // run always fits the horizon at the 50ms cadence.
                count: (total_bytes / 1024).clamp(8, 120) as u32,
            },
        ),
        ChaosWorkload::CommitStream => (
            // Same long-run rate as the smooth streamer (4096/tick), but
            // flushed as one 16 KiB commit every 4 ticks.
            Rc::new(|| Box::new(CommitStreamApp::new(16 * 1024, 4, false)) as _),
            ClientWorkload::Download { total: total_bytes },
        ),
    }
}

/// Runs one chaos case: standard topology, the selected verifying
/// workload, the given schedule, then the invariant checker. Fully
/// deterministic in `(seed, schedule, opts)`.
pub fn run_chaos_case(seed: u64, schedule: &FaultSchedule, opts: &ChaosOptions) -> ChaosReport {
    let (factory, client_workload) = workload_pair(opts.workload, opts.total_bytes);
    let mut s = ScenarioBuilder::new(factory, client_workload)
        .seed(seed)
        .sttcp(StTcpConfig {
            reintegrate: opts.reintegrate,
            hb_delta: opts.hb_delta,
            hb_batch: opts.hb_batch,
            ..chaos_config()
        })
        .build();

    if !opts.trace {
        s.world.set_trace_capacity(opts.trace_capacity);
    }
    schedule.apply(&mut s);
    let end = SimTime::ZERO + opts.horizon;
    s.world.run_until(end);

    if opts.trace {
        for r in s.world.trace().records() {
            eprintln!("{r}");
        }
    }

    let primary = s.server(s.primary);
    let backup = s.server(s.backup);
    let p_events = primary.events().to_vec();
    let b_events = backup.events().to_vec();

    let view = |srv: &StTcpServer, side: Side, peer_events: &[StTcpEvent], role: Role| ServerView {
        configured_role: role,
        events: srv.events().to_vec(),
        powered_off_at: powered_off_at(schedule, side, srv, peer_events),
        cold_standby: srv.cold_standby(),
        active_at_end: srv.is_active(),
    };
    let p_view = view(primary, Side::Primary, &b_events, Role::Primary);
    let b_view = view(backup, Side::Backup, &p_events, Role::Backup);

    let log = s.client_log();
    let from = log
        .connects
        .first()
        .copied()
        .unwrap_or(SimTime::from_millis(100));
    let to = log.finished_at.unwrap_or(end);
    let client = ClientView {
        bytes_ok: log.total_received,
        integrity_violations: log.integrity_violations,
        resets: u64::from(log.resets),
        finished: s.client_finished(),
        longest_stall: log.longest_stall(from, to),
    };

    let mut expectation = schedule.expectation();
    expectation.reintegrate = opts.reintegrate;
    let report = invariant::check(&p_view, &b_view, &client, &expectation);
    // The recorder is always on; the *snapshot* is taken only when a
    // violation makes the tail worth shipping (or when asked to).
    let flight = (report.outcome == Outcome::Violation || opts.flight_always).then(|| {
        s.world
            .flight_snapshot(opts.flight_window_ms.map(SimDuration::from_millis))
    });
    ChaosReport {
        outcome: report.outcome,
        violations: report.violations,
        client,
        primary_events: p_events,
        backup_events: b_events,
        stall_window: log.longest_stall_window(from, to),
        faults: s.world.faults().to_vec(),
        flight,
    }
}

/// Result of shrinking a violating schedule.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized schedule (still violating, unless the input never
    /// violated in the first place).
    pub schedule: FaultSchedule,
    /// Chaos runs spent shrinking (including the final replay that
    /// captures `flight`).
    pub runs: usize,
    /// Flight-recorder tail of the shrunk reproducer's violation, so a
    /// minimized repro ships with its trace. `None` when the input
    /// never violated.
    pub flight: Option<simnet::flight::FlightSnapshot>,
}

/// Greedy delta-debugging over an arbitrary "still failing" predicate:
/// drop actions one at a time to a fixpoint, then snap surviving
/// timestamps to coarser values (1000/500/250/100 ms) where the failure
/// persists.
pub fn shrink_with(
    schedule: &FaultSchedule,
    mut still_fails: impl FnMut(&FaultSchedule) -> bool,
) -> (FaultSchedule, usize) {
    let mut runs = 0;
    let mut fails = |s: &FaultSchedule, runs: &mut usize| {
        *runs += 1;
        still_fails(s)
    };
    let mut cur = schedule.clone();
    if !fails(&cur, &mut runs) {
        return (cur, runs);
    }
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < cur.actions.len() {
            let mut cand = cur.clone();
            cand.actions.remove(i);
            if fails(&cand, &mut runs) {
                cur = cand;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    for snap in [1_000u64, 500, 250, 100] {
        for i in 0..cur.actions.len() {
            let orig = cur.actions[i].at_ms;
            let snapped = (orig / snap) * snap;
            if snapped == orig || snapped == 0 {
                continue;
            }
            let mut cand = cur.clone();
            cand.actions[i].at_ms = snapped;
            cand.sort();
            if fails(&cand, &mut runs) {
                cur = cand;
            }
        }
    }
    (cur, runs)
}

/// Shrinks a schedule that violates an invariant under `(seed, opts)` to
/// a minimal reproducer. Deterministic replay makes every probe reliable.
pub fn shrink_schedule(seed: u64, schedule: &FaultSchedule, opts: &ChaosOptions) -> ShrinkResult {
    let (schedule, runs) = shrink_with(schedule, |cand| {
        run_chaos_case(seed, cand, opts).outcome == Outcome::Violation
    });
    // One replay of the minimized schedule captures the trace that
    // ships with the repro.
    let flight = run_chaos_case(seed, &schedule, opts).flight;
    ShrinkResult {
        schedule,
        runs: runs + 1,
        flight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_display_parse_roundtrip() {
        let text = "@500 crash primary; @900 reboot primary; @300 nic-down backup; \
                    @700 nic-up backup; @100 cut client; @200 restore client; \
                    @400 loss backup 30; @900 loss-end backup; @150 drop-tap 12; \
                    @250 corrupt primary 5; @600 serial-fail; @2000 serial-restore; \
                    @2500 app-crash primary rst; @2600 app-crash backup silent; \
                    @2700 app-crash backup fin; @2800 dup client 4; \
                    @2900 reorder backup 3; @3000 jitter primary 20; \
                    @3300 jitter-end primary; @3400 byz-hb primary freeze; \
                    @3500 byz-hb backup regress";
        let sched: FaultSchedule = text.parse().unwrap();
        assert_eq!(sched.len(), 21);
        let reparsed: FaultSchedule = sched.to_string().parse().unwrap();
        assert_eq!(reparsed, sched);
        // Sorted by time.
        assert!(sched.actions.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn empty_schedule_roundtrip() {
        let sched = FaultSchedule::default();
        assert_eq!(sched.to_string(), "(no faults)");
        let parsed: FaultSchedule = sched.to_string().parse().unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn bad_schedules_rejected() {
        for bad in [
            "500 crash primary",
            "@x crash primary",
            "@500 explode primary",
            "@500 crash",
            "@500 crash gateway",
            "@500 loss primary",
            "@500 crash primary extra",
            "@500 app-crash primary kaboom",
            "@500 byz-hb primary",
            "@500 byz-hb primary lie",
        ] {
            assert!(bad.parse::<FaultSchedule>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = FaultSchedule::generate(7);
        let b = FaultSchedule::generate(7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let differs = (0..20).any(|s| FaultSchedule::generate(s) != a);
        assert!(differs);
    }

    #[test]
    fn generated_schedules_roundtrip_and_stay_coherent() {
        for seed in 0..200 {
            let sched = FaultSchedule::generate(seed);
            let reparsed: FaultSchedule = sched.to_string().parse().unwrap();
            assert_eq!(reparsed, sched, "seed {seed}");
            // Coherence: reboots only after a crash of the same side.
            for (i, a) in sched.actions.iter().enumerate() {
                if let ChaosAction::Reboot(side) = a.action {
                    assert!(
                        sched.actions[..i]
                            .iter()
                            .any(|p| p.action == ChaosAction::Crash(side)),
                        "seed {seed}: reboot of never-crashed {side}"
                    );
                }
            }
        }
    }

    #[test]
    fn reintegrate_schedules_are_coherent() {
        let a = FaultSchedule::generate_reintegrate(11);
        assert_eq!(a, FaultSchedule::generate_reintegrate(11));
        for seed in 0..100 {
            let s = FaultSchedule::generate_reintegrate(seed);
            assert_eq!(s.len(), 3, "seed {seed}: {s}");
            let (first, reboot, second) = (s.actions[0], s.actions[1], s.actions[2]);
            let ChaosAction::Crash(side_a) = first.action else {
                panic!("seed {seed}: expected first crash, got {s}");
            };
            assert_eq!(reboot.action, ChaosAction::Reboot(side_a), "seed {seed}");
            let ChaosAction::Crash(side_b) = second.action else {
                panic!("seed {seed}: expected second crash, got {s}");
            };
            assert_ne!(
                side_a, side_b,
                "seed {seed}: second crash must hit the peer"
            );
            // Enough time for detection+takeover before the reboot is
            // irrelevant, and for the join to converge before the second
            // crash tests it.
            assert!(reboot.at_ms >= first.at_ms + 300, "seed {seed}");
            assert!(second.at_ms >= reboot.at_ms + 2_500, "seed {seed}");
            let reparsed: FaultSchedule = s.to_string().parse().unwrap();
            assert_eq!(reparsed, s, "seed {seed}");
        }
    }

    #[test]
    fn byzantine_schedules_are_coherent() {
        let a = FaultSchedule::generate_byzantine(5);
        assert_eq!(a, FaultSchedule::generate_byzantine(5));
        let mut sides_seen = 0u8;
        for seed in 0..100 {
            let s = FaultSchedule::generate_byzantine(seed);
            assert_eq!(s.len(), 1, "seed {seed}: {s}");
            let ChaosAction::ByzantineHb(side, _) = s.actions[0].action else {
                panic!("seed {seed}: expected byz-hb, got {s}");
            };
            sides_seen |= match side {
                Side::Primary => 1,
                Side::Backup => 2,
            };
            assert!(s.actions[0].at_ms >= 400, "seed {seed}");
            let reparsed: FaultSchedule = s.to_string().parse().unwrap();
            assert_eq!(reparsed, s, "seed {seed}");
        }
        assert_eq!(sides_seen, 3, "both sides must get exercised");
    }

    #[test]
    fn byzantine_expectation_rules() {
        // Pure single-side byzantine schedule: liar containment applies.
        let pure: FaultSchedule = "@500 byz-hb primary freeze".parse().unwrap();
        let e = pure.expectation();
        assert_eq!(e.byzantine, Some(Role::Primary));
        assert!(e.verdicts_possible, "honest side may condemn the liar");
        assert!(!e.service_may_be_lost);
        assert!(!e.unrecoverable_gap_possible);
        assert!(e.max_stall.is_some());

        let backup: FaultSchedule = "@500 byz-hb backup regress".parse().unwrap();
        assert_eq!(backup.expectation().byzantine, Some(Role::Backup));

        // Mixed with other faults the liar could hold legitimate evidence
        // against its peer, so containment cannot be asserted.
        let mixed: FaultSchedule = "@500 byz-hb primary freeze; @900 crash backup"
            .parse()
            .unwrap();
        let e = mixed.expectation();
        assert_eq!(e.byzantine, None);
        // The liar gets STONITHed and the peer crashed: both sides dead.
        assert!(e.service_may_be_lost);

        let both: FaultSchedule = "@500 byz-hb primary freeze; @600 byz-hb backup regress"
            .parse()
            .unwrap();
        assert_eq!(both.expectation().byzantine, None);
    }

    #[test]
    fn expectation_rules() {
        let strict: FaultSchedule = "@300 drop-tap 10".parse().unwrap();
        let e = strict.expectation();
        assert!(!e.verdicts_possible);
        assert!(!e.service_may_be_lost);
        assert!(!e.unrecoverable_gap_possible);
        assert!(e.max_stall.is_some());

        // Even a small corruption budget may legitimately provoke a
        // verdict: frame counts are not time windows, and under sparse
        // traffic a few eaten heartbeats look exactly like a blackout.
        let corrupt: FaultSchedule = "@300 corrupt backup 8".parse().unwrap();
        let e = corrupt.expectation();
        assert!(e.verdicts_possible, "corruption can eat heartbeats");
        assert!(e.max_stall.is_none(), "corruption can stall via RTO");
        // Corruption toward the backup is both a tap risk and a
        // primary-death risk (the backup may condemn a dark primary).
        assert!(e.unrecoverable_gap_possible);
        assert!(e.service_may_be_lost);

        let crash: FaultSchedule = "@500 crash primary".parse().unwrap();
        let e = crash.expectation();
        assert!(e.verdicts_possible);
        assert!(!e.service_may_be_lost);

        let double: FaultSchedule = "@500 crash primary; @900 crash backup".parse().unwrap();
        assert!(double.expectation().service_may_be_lost);

        let split: FaultSchedule = "@500 serial-fail; @600 cut primary".parse().unwrap();
        assert!(split.expectation().service_may_be_lost);

        let gap: FaultSchedule = "@300 drop-tap 10; @500 crash primary".parse().unwrap();
        assert!(gap.expectation().unrecoverable_gap_possible);

        let rst: FaultSchedule = "@500 app-crash primary rst".parse().unwrap();
        assert!(rst.expectation().abortive_close_possible);

        let serial_only: FaultSchedule = "@500 serial-fail".parse().unwrap();
        let e = serial_only.expectation();
        assert!(
            !e.verdicts_possible,
            "a serial failure alone must never provoke a verdict"
        );

        // Serial dead + corruption toward a server: that server sees both
        // heartbeat links dark and may correctly condemn its peer.
        let deaf: FaultSchedule = "@500 serial-fail; @600 corrupt primary 5".parse().unwrap();
        assert!(deaf.expectation().verdicts_possible);

        // A deaf backup can STONITH the primary, so tap corruption then
        // becomes both a gap risk and a client-path risk.
        let deaf_backup: FaultSchedule = "@500 serial-fail; @600 corrupt backup 5".parse().unwrap();
        let e = deaf_backup.expectation();
        assert!(e.verdicts_possible);
        assert!(e.unrecoverable_gap_possible);
        assert!(e.service_may_be_lost);

        // Tap drop plus a dead primary: after takeover the tap filter
        // starves the client's path to the new active server, so
        // completion cannot be demanded.
        let tap_then_dead: FaultSchedule = "@100 cut primary; @200 drop-tap 16".parse().unwrap();
        assert!(tap_then_dead.expectation().service_may_be_lost);

        // Duplication, reordering, and bounded jitter are benign: no
        // verdict may fire, the download completes, and stalls stay
        // bounded.
        let benign: FaultSchedule = "@300 dup primary 6; @400 reorder backup 4; \
                                     @500 jitter client 25; @900 jitter-end client"
            .parse()
            .unwrap();
        let e = benign.expectation();
        assert!(!e.verdicts_possible);
        assert!(!e.service_may_be_lost);
        assert!(!e.unrecoverable_gap_possible);
        assert!(e.max_stall.is_some());
    }

    #[test]
    fn shrink_with_reduces_to_relevant_core() {
        let sched: FaultSchedule = "@100 drop-tap 3; @500 crash primary; @700 serial-fail; \
                                    @900 nic-down backup; @1100 corrupt client 2"
            .parse()
            .unwrap();
        // Synthetic failure: needs the crash and the serial failure.
        let (min, runs) = shrink_with(&sched, |s| {
            let crash = s
                .actions
                .iter()
                .any(|a| a.action == ChaosAction::Crash(Side::Primary));
            let serial = s
                .actions
                .iter()
                .any(|a| a.action == ChaosAction::SerialFail);
            crash && serial
        });
        assert_eq!(min.len(), 2, "shrunk to {min}");
        assert!(runs > 2);
        // Time snapping kicked in: 700 → 500 (multiple of 500), 500 stays.
        assert_eq!(min.actions[0].at_ms, 500);
        assert_eq!(min.actions[1].at_ms, 500);
    }

    #[test]
    fn shrink_with_leaves_passing_schedule_alone() {
        let sched: FaultSchedule = "@500 crash primary".parse().unwrap();
        let (out, runs) = shrink_with(&sched, |_| false);
        assert_eq!(out, sched);
        assert_eq!(runs, 1);
    }
}
