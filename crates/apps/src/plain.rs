//! A plain (non-fault-tolerant) TCP server node — the baseline.
//!
//! Used two ways in the experiments:
//!
//! * **Demo 3** compares transfer time "with ST-TCP enabled" against
//!   "with ST-TCP disabled" — the disabled case is this server.
//! * **Demo 1's contrast** runs a plain primary plus a plain hot standby
//!   on a different address: when the primary dies the client's
//!   connection dies with it, and only a client-side reconnect-and-restart
//!   recovers service.

use bytes::Bytes;
use std::collections::BTreeMap;

use simnet::frame::EthernetFrame;
use simnet::ip::IpProto;
use simnet::iplayer::IpInterface;
use simnet::node::{NicId, Node, NodeCtx, TimerId, TimerToken};
use simnet::time::{SimDuration, SimTime};

use simtcp::conn::TcpConfig;
use simtcp::endpoint::{EndpointConfig, IsnPolicy, ListenConfig, RstPolicy, TcpEndpoint};
use simtcp::socket::{SocketEvent, SocketId};

use sttcp::app::{AppAction, AppFactory, Application};

const TOKEN_TCP: TimerToken = TimerToken(1);
const TOKEN_APP_TICK: TimerToken = TimerToken(2);

/// Configuration for a [`PlainServer`].
#[derive(Debug, Clone)]
pub struct PlainServerConfig {
    /// Listening port.
    pub port: u16,
    /// TCP tuning.
    pub tcp: TcpConfig,
    /// Application tick period.
    pub app_tick: SimDuration,
    /// RNG seed (ISNs).
    pub seed: u64,
}

impl Default for PlainServerConfig {
    fn default() -> Self {
        PlainServerConfig {
            port: 80,
            tcp: TcpConfig::default(),
            app_tick: SimDuration::from_millis(10),
            seed: 0,
        }
    }
}

struct PlainConn {
    app: Box<dyn Application>,
    pending_out: Vec<Bytes>,
    closed: bool,
}

/// An ordinary TCP server with no fault tolerance whatsoever.
pub struct PlainServer {
    cfg: PlainServerConfig,
    iface: IpInterface,
    tcp: TcpEndpoint,
    factory: Box<dyn AppFactory>,
    conns: BTreeMap<SocketId, PlainConn>,
    tcp_timer: Option<(TimerId, SimTime)>,
}

impl std::fmt::Debug for PlainServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlainServer")
            .field("port", &self.cfg.port)
            .field("conns", &self.conns.len())
            .finish_non_exhaustive()
    }
}

impl PlainServer {
    /// Creates a plain server on the given interface.
    pub fn new(
        cfg: PlainServerConfig,
        iface: IpInterface,
        factory: Box<dyn AppFactory>,
    ) -> PlainServer {
        let ep = EndpointConfig {
            tcp: cfg.tcp.clone(),
            isn: IsnPolicy::Random,
            rst_policy: RstPolicy::Send,
            seed: cfg.seed,
        };
        PlainServer {
            cfg,
            iface,
            tcp: TcpEndpoint::new(ep),
            factory,
            conns: BTreeMap::new(),
            tcp_timer: None,
        }
    }

    /// Total connections ever accepted.
    pub fn accepted(&self) -> usize {
        self.conns.len()
    }

    /// The underlying endpoint (for test assertions).
    pub fn endpoint(&self) -> &TcpEndpoint {
        &self.tcp
    }

    fn apply_actions(&mut self, now: SimTime, sock: SocketId, actions: Vec<AppAction>) {
        for a in actions {
            match a {
                AppAction::Write(b) => {
                    if let Some(c) = self.conns.get_mut(&sock) {
                        c.pending_out.push(b);
                    }
                }
                AppAction::Close => {
                    self.flush_pending(now, sock);
                    self.tcp.close(now, sock);
                }
                AppAction::Abort => self.tcp.abort(now, sock),
            }
        }
        self.flush_pending(now, sock);
    }

    fn flush_pending(&mut self, now: SimTime, sock: SocketId) {
        loop {
            let Some(front) = self
                .conns
                .get_mut(&sock)
                .and_then(|c| c.pending_out.first().cloned())
            else {
                return;
            };
            let n = self.tcp.send(now, sock, &front);
            let Some(c) = self.conns.get_mut(&sock) else {
                return;
            };
            if n == 0 {
                return;
            }
            if n == front.len() {
                c.pending_out.remove(0);
            } else {
                c.pending_out[0] = front.slice(n..);
                return;
            }
        }
    }

    fn drain_events(&mut self, now: SimTime) -> bool {
        let mut any = false;
        while let Some((sock, ev)) = self.tcp.poll_event() {
            any = true;
            match ev {
                SocketEvent::Accepted => {
                    let mut app = self.factory.create();
                    let actions = app.on_open();
                    self.conns.insert(
                        sock,
                        PlainConn {
                            app,
                            pending_out: Vec::new(),
                            closed: false,
                        },
                    );
                    self.apply_actions(now, sock, actions);
                }
                SocketEvent::DataReadable => loop {
                    let data = self.tcp.recv(sock, 64 * 1024);
                    if data.is_empty() {
                        break;
                    }
                    let actions = match self.conns.get_mut(&sock) {
                        Some(c) => c.app.on_data(&data),
                        None => break,
                    };
                    self.apply_actions(now, sock, actions);
                },
                SocketEvent::PeerFin => {
                    let actions = match self.conns.get_mut(&sock) {
                        Some(c) => c.app.on_peer_close(),
                        None => continue,
                    };
                    self.apply_actions(now, sock, actions);
                }
                SocketEvent::Reset | SocketEvent::Closed => {
                    if let Some(c) = self.conns.get_mut(&sock) {
                        c.closed = true;
                    }
                }
                SocketEvent::Connected => {}
            }
        }
        any
    }

    fn flush(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        loop {
            let had = self.drain_events(now);
            let blocked: Vec<SocketId> = self
                .conns
                .iter()
                .filter(|(_, c)| !c.pending_out.is_empty() && !c.closed)
                .map(|(&s, _)| s)
                .collect();
            for s in blocked {
                self.flush_pending(now, s);
            }
            let pkts = self.tcp.poll_packets(now);
            if !had && pkts.is_empty() {
                break;
            }
            for pkt in pkts {
                if let Some(frame) = self.iface.encap(&pkt) {
                    ctx.send_frame(self.iface.nic, frame);
                }
            }
        }
        let want = self.tcp.next_deadline();
        match (want, self.tcp_timer) {
            (Some(d), Some((_, at))) if d == at => {}
            (Some(d), prev) => {
                if let Some((id, _)) = prev {
                    ctx.cancel_timer(id);
                }
                let id = ctx.set_timer(d.saturating_since(now), TOKEN_TCP);
                self.tcp_timer = Some((id, d));
            }
            (None, Some((id, _))) => {
                ctx.cancel_timer(id);
                self.tcp_timer = None;
            }
            (None, None) => {}
        }
    }
}

impl Node for PlainServer {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.tcp.listen(
            self.cfg.port,
            ListenConfig {
                tcp: self.cfg.tcp.clone(),
                ..Default::default()
            },
        );
        ctx.set_timer(self.cfg.app_tick, TOKEN_APP_TICK);
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, _nic: NicId, frame: EthernetFrame) {
        if let Some(pkt) = IpInterface::decap(&frame) {
            match pkt.proto {
                IpProto::Icmp => {
                    let _ = self.iface.handle_icmp(ctx, &pkt);
                }
                IpProto::Tcp if self.iface.accepts(pkt.dst) => {
                    self.tcp.on_packet(ctx.now(), &pkt);
                }
                _ => {}
            }
        }
        self.flush(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        match token {
            TOKEN_TCP => {
                self.tcp_timer = None;
                self.tcp.on_time(ctx.now());
            }
            TOKEN_APP_TICK => {
                let now = ctx.now();
                let socks: Vec<SocketId> = self.conns.keys().copied().collect();
                for sock in socks {
                    let actions = match self.conns.get_mut(&sock) {
                        Some(c) if !c.closed => c.app.on_tick(now),
                        _ => continue,
                    };
                    self.apply_actions(now, sock, actions);
                }
                ctx.set_timer(self.cfg.app_tick, TOKEN_APP_TICK);
            }
            _ => {}
        }
        self.flush(ctx);
    }
}
