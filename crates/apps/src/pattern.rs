//! The deterministic byte pattern used by workloads and verified by
//! clients.
//!
//! Every server-push workload emits the byte at stream position `p` as
//! [`pattern_byte`]`(p)`; the verifying client checks each received byte
//! against its cumulative position. Any duplication, loss, reordering, or
//! corruption across a failover therefore shows up as an integrity
//! violation at an exact offset — this is what makes Demo 1's
//! "seamless" claim checkable rather than eyeballed.

/// The expected byte at stream position `p`.
///
/// Modulo a prime (251) so that block-aligned mistakes (off-by-one-MSS,
/// swapped 256-byte pages) cannot alias back onto the correct pattern.
///
/// # Examples
///
/// ```
/// use sttcp_apps::pattern::pattern_byte;
///
/// assert_eq!(pattern_byte(0), 0);
/// assert_eq!(pattern_byte(250), 250);
/// assert_eq!(pattern_byte(251), 0);
/// ```
pub fn pattern_byte(p: u64) -> u8 {
    (p % 251) as u8
}

/// Fills `buf` with the pattern for positions `start..start + buf.len()`.
pub fn fill_pattern(start: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = pattern_byte(start + i as u64);
    }
}

/// Produces a pattern chunk for positions `start..start + len`.
pub fn pattern_chunk(start: u64, len: usize) -> bytes::Bytes {
    let mut v = vec![0u8; len];
    fill_pattern(start, &mut v);
    bytes::Bytes::from(v)
}

/// Verifies that `data` matches the pattern starting at `start`.
///
/// Returns the position of the first mismatch, or `None` if all bytes
/// match.
pub fn verify_pattern(start: u64, data: &[u8]) -> Option<u64> {
    data.iter()
        .enumerate()
        .find(|&(i, &b)| b != pattern_byte(start + i as u64))
        .map(|(i, _)| start + i as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_deterministic_and_period_251() {
        for p in 0..1_000u64 {
            assert_eq!(pattern_byte(p), pattern_byte(p + 251));
            assert!(pattern_byte(p) < 251);
        }
    }

    #[test]
    fn chunk_and_verify_agree() {
        let c = pattern_chunk(1_000, 5_000);
        assert_eq!(verify_pattern(1_000, &c), None);
        // A wrong offset is detected immediately (except where the pattern
        // happens to coincide).
        assert!(verify_pattern(1_001, &c).is_some());
    }

    #[test]
    fn corruption_is_located_exactly() {
        let mut v = pattern_chunk(0, 100).to_vec();
        v[42] ^= 0xff;
        assert_eq!(verify_pattern(0, &v), Some(42));
    }

    #[test]
    fn fill_matches_chunk() {
        let mut buf = [0u8; 64];
        fill_pattern(777, &mut buf);
        assert_eq!(&buf[..], pattern_chunk(777, 64).as_ref());
    }

    #[test]
    fn chunks_compose_seamlessly() {
        let a = pattern_chunk(0, 100);
        let b = pattern_chunk(100, 100);
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(verify_pattern(0, &joined), None);
    }
}
