//! Deterministic server applications for the ST-TCP workloads.
//!
//! All applications satisfy the [`sttcp::app::Application`] contract:
//! their output byte stream is a pure function of their input byte
//! stream. Ticks only pace output, never change it.

use bytes::Bytes;
use simnet::time::SimTime;
use sttcp::app::{AppAction, Application};

use crate::pattern::pattern_chunk;

/// A server-push streamer — the paper's "pie chart" GUI feed (Demo 1) and
/// large-file server (Demo 3).
///
/// Protocol: the client sends a request line `GET <n>\n`; the server then
/// streams `n` pattern bytes, paced at `chunk_per_tick` bytes per
/// application tick (use a large chunk for an unpaced bulk transfer), and
/// optionally closes when done.
#[derive(Debug, Clone)]
pub struct StreamApp {
    /// Bytes written per application tick once a request is active.
    chunk_per_tick: usize,
    /// Close the connection after finishing the response.
    close_when_done: bool,
    /// Parsed request target (`None` until a full request line arrives).
    requested: Option<u64>,
    /// Bytes of the response emitted so far.
    sent: u64,
    /// Request-line accumulator.
    line: Vec<u8>,
    /// Total request bytes consumed (digest input).
    consumed: u64,
    finished: bool,
}

impl StreamApp {
    /// Creates a streamer pacing `chunk_per_tick` bytes per tick.
    pub fn new(chunk_per_tick: usize, close_when_done: bool) -> StreamApp {
        StreamApp {
            chunk_per_tick,
            close_when_done,
            requested: None,
            sent: 0,
            line: Vec::new(),
            consumed: 0,
            finished: false,
        }
    }

    /// Bytes of response streamed so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn emit(&mut self) -> Vec<AppAction> {
        let Some(total) = self.requested else {
            return Vec::new();
        };
        if self.sent >= total {
            if !self.finished {
                self.finished = true;
                if self.close_when_done {
                    return vec![AppAction::Close];
                }
            }
            return Vec::new();
        }
        let n = (total - self.sent).min(self.chunk_per_tick as u64) as usize;
        let chunk = pattern_chunk(self.sent, n);
        self.sent += n as u64;
        let mut actions = vec![AppAction::Write(chunk)];
        if self.sent >= total && self.close_when_done {
            self.finished = true;
            actions.push(AppAction::Close);
        }
        actions
    }
}

impl Application for StreamApp {
    fn on_data(&mut self, data: &[u8]) -> Vec<AppAction> {
        self.consumed += data.len() as u64;
        if self.requested.is_some() {
            return Vec::new(); // trailing client bytes are ignored
        }
        for &b in data {
            if b == b'\n' {
                let line = std::mem::take(&mut self.line);
                let text = String::from_utf8_lossy(&line);
                let n = text
                    .strip_prefix("GET ")
                    .and_then(|s| s.trim().parse::<u64>().ok())
                    .unwrap_or(0);
                self.requested = Some(n);
                // First chunk goes out with the request, the rest on ticks.
                return self.emit();
            }
            self.line.push(b);
        }
        Vec::new()
    }

    fn on_tick(&mut self, _now: SimTime) -> Vec<AppAction> {
        self.emit()
    }

    // Ticks matter only from the GET until the stream (and its closing
    // action) has drained; before the request and after completion the
    // app is purely reactive.
    fn wants_tick(&self) -> bool {
        self.requested
            .is_some_and(|total| self.sent < total || !self.finished)
    }

    fn on_peer_close(&mut self) -> Vec<AppAction> {
        vec![AppAction::Close]
    }

    fn state_digest(&self) -> u64 {
        self.consumed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.sent)
            .wrapping_add(self.requested.unwrap_or(u64::MAX))
    }

    // Layout: flags(1) ‖ requested(8) ‖ sent(8) ‖ consumed(8) ‖
    // line_len(4) ‖ line. Pacing config (`chunk_per_tick`,
    // `close_when_done`) is not state — the factory on the restoring
    // server supplies it identically.
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(29 + self.line.len());
        let mut flags = 0u8;
        if self.requested.is_some() {
            flags |= 1;
        }
        if self.finished {
            flags |= 2;
        }
        out.push(flags);
        out.extend_from_slice(&self.requested.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&self.sent.to_le_bytes());
        out.extend_from_slice(&self.consumed.to_le_bytes());
        out.extend_from_slice(&(self.line.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.line);
        Some(out)
    }

    fn restore(&mut self, state: &[u8]) {
        if state.len() < 29 {
            return;
        }
        let flags = state[0];
        let requested = u64::from_le_bytes(state[1..9].try_into().unwrap());
        let sent = u64::from_le_bytes(state[9..17].try_into().unwrap());
        let consumed = u64::from_le_bytes(state[17..25].try_into().unwrap());
        let line_len = u32::from_le_bytes(state[25..29].try_into().unwrap()) as usize;
        if state.len() != 29 + line_len || flags & !3 != 0 {
            return;
        }
        self.requested = (flags & 1 != 0).then_some(requested);
        self.finished = flags & 2 != 0;
        self.sent = sent;
        self.consumed = consumed;
        self.line = state[29..].to_vec();
    }
}

/// A request/response worker: consumes `\n`-terminated lines and answers
/// each with a deterministic transformation (`<reversed-line>:<checksum>\n`).
///
/// Exercises interactive workloads (the lag detectors need request
/// activity to observe).
#[derive(Debug, Clone, Default)]
pub struct ReqRespApp {
    line: Vec<u8>,
    requests: u64,
    consumed: u64,
}

impl ReqRespApp {
    /// Creates the worker.
    pub fn new() -> ReqRespApp {
        ReqRespApp::default()
    }

    /// Number of requests answered.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The deterministic response to one request line (no trailing
    /// newline in `line`).
    pub fn response_for(line: &[u8]) -> Bytes {
        let reversed: Vec<u8> = line.iter().rev().copied().collect();
        let sum: u32 = line.iter().map(|&b| b as u32).sum();
        let mut out = reversed;
        out.extend_from_slice(format!(":{sum:08x}\n").as_bytes());
        Bytes::from(out)
    }
}

impl Application for ReqRespApp {
    fn on_data(&mut self, data: &[u8]) -> Vec<AppAction> {
        self.consumed += data.len() as u64;
        let mut actions = Vec::new();
        for &b in data {
            if b == b'\n' {
                let line = std::mem::take(&mut self.line);
                self.requests += 1;
                actions.push(AppAction::Write(Self::response_for(&line)));
            } else {
                self.line.push(b);
            }
        }
        actions
    }

    // Request/response is purely reactive; ticks are never needed.
    fn wants_tick(&self) -> bool {
        false
    }

    fn on_peer_close(&mut self) -> Vec<AppAction> {
        vec![AppAction::Close]
    }

    fn state_digest(&self) -> u64 {
        self.consumed
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(self.requests)
    }

    // Layout: requests(8) ‖ consumed(8) ‖ line_len(4) ‖ line.
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(20 + self.line.len());
        out.extend_from_slice(&self.requests.to_le_bytes());
        out.extend_from_slice(&self.consumed.to_le_bytes());
        out.extend_from_slice(&(self.line.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.line);
        Some(out)
    }

    fn restore(&mut self, state: &[u8]) {
        if state.len() < 20 {
            return;
        }
        let requests = u64::from_le_bytes(state[0..8].try_into().unwrap());
        let consumed = u64::from_le_bytes(state[8..16].try_into().unwrap());
        let line_len = u32::from_le_bytes(state[16..20].try_into().unwrap()) as usize;
        if state.len() != 20 + line_len {
            return;
        }
        self.requests = requests;
        self.consumed = consumed;
        self.line = state[20..].to_vec();
    }
}

/// A periodic-commit streamer: serves the same `GET <n>\n` protocol as
/// [`StreamApp`] but flushes its output in bursts, one commit every
/// `period_ticks` application ticks, instead of a smooth per-tick trickle.
///
/// The bursty shape matters to the failure detectors: between commits the
/// replicas' `LastAppByteWritten` positions sit still, then jump together —
/// a lag detector that confuses "quiet between commits" with "crashed"
/// would condemn a healthy peer. The response bytes are the same verified
/// pattern as [`StreamApp`], so the download client checks integrity
/// end-to-end unchanged.
#[derive(Debug, Clone)]
pub struct CommitStreamApp {
    /// Bytes flushed per commit.
    commit_bytes: usize,
    /// Application ticks between commits.
    period_ticks: u32,
    /// Close the connection after finishing the response.
    close_when_done: bool,
    /// Ticks observed since the request became active (pacing phase).
    ticks: u32,
    requested: Option<u64>,
    sent: u64,
    line: Vec<u8>,
    consumed: u64,
    finished: bool,
}

impl CommitStreamApp {
    /// Creates a streamer committing `commit_bytes` every `period_ticks`
    /// ticks.
    pub fn new(commit_bytes: usize, period_ticks: u32, close_when_done: bool) -> CommitStreamApp {
        CommitStreamApp {
            commit_bytes,
            period_ticks: period_ticks.max(1),
            close_when_done,
            ticks: 0,
            requested: None,
            sent: 0,
            line: Vec::new(),
            consumed: 0,
            finished: false,
        }
    }

    /// Bytes of response streamed so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn commit(&mut self) -> Vec<AppAction> {
        let Some(total) = self.requested else {
            return Vec::new();
        };
        if self.sent >= total {
            if !self.finished {
                self.finished = true;
                if self.close_when_done {
                    return vec![AppAction::Close];
                }
            }
            return Vec::new();
        }
        let n = (total - self.sent).min(self.commit_bytes as u64) as usize;
        let chunk = pattern_chunk(self.sent, n);
        self.sent += n as u64;
        let mut actions = vec![AppAction::Write(chunk)];
        if self.sent >= total && self.close_when_done {
            self.finished = true;
            actions.push(AppAction::Close);
        }
        actions
    }
}

impl Application for CommitStreamApp {
    fn on_data(&mut self, data: &[u8]) -> Vec<AppAction> {
        self.consumed += data.len() as u64;
        if self.requested.is_some() {
            return Vec::new();
        }
        for &b in data {
            if b == b'\n' {
                let line = std::mem::take(&mut self.line);
                let text = String::from_utf8_lossy(&line);
                let n = text
                    .strip_prefix("GET ")
                    .and_then(|s| s.trim().parse::<u64>().ok())
                    .unwrap_or(0);
                self.requested = Some(n);
                // The first commit goes out with the request; the rest on
                // the periodic cadence.
                return self.commit();
            }
            self.line.push(b);
        }
        Vec::new()
    }

    fn on_tick(&mut self, _now: SimTime) -> Vec<AppAction> {
        if self.requested.is_none() {
            return Vec::new();
        }
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(self.period_ticks) {
            self.commit()
        } else {
            Vec::new()
        }
    }

    // Ticks pace commits only while the stream is live; the tick counter
    // is pacing state, not output (see `state_digest`), so freezing it
    // when the stream is done is unobservable.
    fn wants_tick(&self) -> bool {
        self.requested
            .is_some_and(|total| self.sent < total || !self.finished)
    }

    fn on_peer_close(&mut self) -> Vec<AppAction> {
        vec![AppAction::Close]
    }

    // The tick phase is pacing, not output: two replicas whose commits
    // are phase-shifted still produce the identical byte stream, so the
    // digest covers only stream state.
    fn state_digest(&self) -> u64 {
        self.consumed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.sent)
            .wrapping_add(self.requested.unwrap_or(u64::MAX))
    }

    // Layout: flags(1) ‖ requested(8) ‖ sent(8) ‖ consumed(8) ‖ ticks(4) ‖
    // line_len(4) ‖ line. Commit size/period are factory configuration.
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(33 + self.line.len());
        let mut flags = 0u8;
        if self.requested.is_some() {
            flags |= 1;
        }
        if self.finished {
            flags |= 2;
        }
        out.push(flags);
        out.extend_from_slice(&self.requested.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&self.sent.to_le_bytes());
        out.extend_from_slice(&self.consumed.to_le_bytes());
        out.extend_from_slice(&self.ticks.to_le_bytes());
        out.extend_from_slice(&(self.line.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.line);
        Some(out)
    }

    fn restore(&mut self, state: &[u8]) {
        if state.len() < 33 {
            return;
        }
        let flags = state[0];
        let requested = u64::from_le_bytes(state[1..9].try_into().unwrap());
        let sent = u64::from_le_bytes(state[9..17].try_into().unwrap());
        let consumed = u64::from_le_bytes(state[17..25].try_into().unwrap());
        let ticks = u32::from_le_bytes(state[25..29].try_into().unwrap());
        let line_len = u32::from_le_bytes(state[29..33].try_into().unwrap()) as usize;
        if state.len() != 33 + line_len || flags & !3 != 0 {
            return;
        }
        self.requested = (flags & 1 != 0).then_some(requested);
        self.finished = flags & 2 != 0;
        self.sent = sent;
        self.consumed = consumed;
        self.ticks = ticks;
        self.line = state[33..].to_vec();
    }
}

/// A sink: consumes everything, answers nothing (upload workloads).
#[derive(Debug, Clone, Default)]
pub struct SinkApp {
    consumed: u64,
}

impl SinkApp {
    /// Creates the sink.
    pub fn new() -> SinkApp {
        SinkApp::default()
    }

    /// Total bytes swallowed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

impl Application for SinkApp {
    fn on_data(&mut self, data: &[u8]) -> Vec<AppAction> {
        self.consumed += data.len() as u64;
        Vec::new()
    }

    // Swallowing bytes is purely reactive; ticks are never needed.
    fn wants_tick(&self) -> bool {
        false
    }

    fn on_peer_close(&mut self) -> Vec<AppAction> {
        vec![AppAction::Close]
    }

    fn state_digest(&self) -> u64 {
        self.consumed
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.consumed.to_le_bytes().to_vec())
    }

    fn restore(&mut self, state: &[u8]) {
        if let Ok(bytes) = state.try_into() {
            self.consumed = u64::from_le_bytes(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::verify_pattern;

    fn drain_writes(actions: &[AppAction]) -> Vec<u8> {
        let mut out = Vec::new();
        for a in actions {
            if let AppAction::Write(b) = a {
                out.extend_from_slice(b);
            }
        }
        out
    }

    #[test]
    fn stream_app_serves_request() {
        let mut app = StreamApp::new(1_000, true);
        let first = app.on_data(b"GET 2500\n");
        let mut got = drain_writes(&first);
        for _ in 0..5 {
            got.extend(drain_writes(&app.on_tick(SimTime::ZERO)));
        }
        assert_eq!(got.len(), 2_500);
        assert_eq!(verify_pattern(0, &got), None);
        // Close arrives exactly once, at the end.
        let closes = app.on_tick(SimTime::ZERO);
        assert!(closes.is_empty(), "no duplicate close: {closes:?}");
        assert_eq!(app.sent(), 2_500);
    }

    #[test]
    fn stream_app_request_split_across_segments() {
        let mut app = StreamApp::new(100, false);
        assert!(app.on_data(b"GE").is_empty());
        assert!(app.on_data(b"T 30").is_empty());
        let out = drain_writes(&app.on_data(b"0\n"));
        assert_eq!(out.len(), 100);
        assert_eq!(app.requested, Some(300));
    }

    #[test]
    fn stream_app_without_close_keeps_connection() {
        let mut app = StreamApp::new(1_000, false);
        let _ = app.on_data(b"GET 100\n");
        let after = app.on_tick(SimTime::ZERO);
        assert!(after.is_empty());
    }

    #[test]
    fn stream_replicas_lockstep() {
        let mut p = StreamApp::new(500, true);
        let mut b = StreamApp::new(500, true);
        assert_eq!(p.on_data(b"GET 1200\n"), b.on_data(b"GET 1200\n"));
        for _ in 0..4 {
            assert_eq!(p.on_tick(SimTime::ZERO), b.on_tick(SimTime::from_secs(5)));
        }
        assert_eq!(p.state_digest(), b.state_digest());
    }

    #[test]
    fn bad_request_streams_nothing() {
        let mut app = StreamApp::new(100, true);
        let actions = app.on_data(b"BOGUS\n");
        // Requested parses to 0 ⇒ immediate close, no data.
        assert_eq!(drain_writes(&actions).len(), 0);
        assert!(actions.contains(&AppAction::Close));
    }

    #[test]
    fn commit_stream_flushes_on_the_period() {
        let mut app = CommitStreamApp::new(400, 4, true);
        let mut got = drain_writes(&app.on_data(b"GET 1000\n"));
        assert_eq!(got.len(), 400, "first commit rides with the request");
        let mut quiet_ticks = 0;
        for _ in 0..12 {
            let out = drain_writes(&app.on_tick(SimTime::ZERO));
            if out.is_empty() {
                quiet_ticks += 1;
            }
            got.extend(out);
        }
        assert_eq!(got.len(), 1000);
        assert_eq!(verify_pattern(0, &got), None);
        assert!(quiet_ticks >= 6, "output must be bursty, not per-tick");
        assert_eq!(app.sent(), 1000);
    }

    #[test]
    fn commit_stream_replicas_lockstep_and_restore() {
        let mut p = CommitStreamApp::new(300, 3, true);
        let mut b = CommitStreamApp::new(300, 3, true);
        assert_eq!(p.on_data(b"GET 900\n"), b.on_data(b"GET 900\n"));
        for _ in 0..9 {
            assert_eq!(p.on_tick(SimTime::ZERO), b.on_tick(SimTime::from_secs(2)));
        }
        assert_eq!(p.state_digest(), b.state_digest());

        // Snapshot mid-stream (including pacing phase) restores exactly.
        let mut p = CommitStreamApp::new(300, 3, true);
        let _ = p.on_data(b"GET 900\n");
        let _ = p.on_tick(SimTime::ZERO);
        let mut r = CommitStreamApp::new(300, 3, true);
        r.restore(&p.snapshot().unwrap());
        assert_eq!(p.state_digest(), r.state_digest());
        for _ in 0..8 {
            assert_eq!(p.on_tick(SimTime::ZERO), r.on_tick(SimTime::ZERO));
        }

        // Garbage restores are ignored.
        let mut g = CommitStreamApp::new(300, 3, true);
        g.restore(b"short");
        assert_eq!(
            g.state_digest(),
            CommitStreamApp::new(300, 3, true).state_digest()
        );
    }

    #[test]
    fn reqresp_transforms_lines() {
        let mut app = ReqRespApp::new();
        let out = drain_writes(&app.on_data(b"abc\nxyz\n"));
        let expected: Vec<u8> = [
            ReqRespApp::response_for(b"abc").to_vec(),
            ReqRespApp::response_for(b"xyz").to_vec(),
        ]
        .concat();
        assert_eq!(out, expected);
        assert_eq!(app.requests(), 2);
    }

    #[test]
    fn reqresp_partial_lines_buffer() {
        let mut app = ReqRespApp::new();
        assert!(app.on_data(b"hel").is_empty());
        let out = drain_writes(&app.on_data(b"lo\n"));
        assert_eq!(out, ReqRespApp::response_for(b"hello").to_vec());
    }

    #[test]
    fn reqresp_replicas_lockstep() {
        let mut p = ReqRespApp::new();
        let mut b = ReqRespApp::new();
        for chunk in [b"on".as_ref(), b"e\ntwo\n", b"three\n"] {
            assert_eq!(p.on_data(chunk), b.on_data(chunk));
        }
        assert_eq!(p.state_digest(), b.state_digest());
    }

    #[test]
    fn snapshots_restore_to_identical_digests() {
        // Mid-transfer streamer, including a partially buffered line.
        let mut p = StreamApp::new(500, true);
        let _ = p.on_data(b"GET 1200\n");
        let _ = p.on_tick(SimTime::ZERO);
        let _ = p.on_data(b"trail");
        let mut b = StreamApp::new(500, true);
        b.restore(&p.snapshot().unwrap());
        assert_eq!(p.state_digest(), b.state_digest());
        // The restored replica continues the stream identically.
        assert_eq!(p.on_tick(SimTime::ZERO), b.on_tick(SimTime::from_secs(9)));

        let mut p = ReqRespApp::new();
        let _ = p.on_data(b"one\ntw");
        let mut b = ReqRespApp::new();
        b.restore(&p.snapshot().unwrap());
        assert_eq!(p.state_digest(), b.state_digest());
        assert_eq!(p.on_data(b"o\n"), b.on_data(b"o\n"));

        let mut p = SinkApp::new();
        let _ = p.on_data(b"abcdef");
        let mut b = SinkApp::new();
        b.restore(&p.snapshot().unwrap());
        assert_eq!(p.state_digest(), b.state_digest());
    }

    #[test]
    fn restore_ignores_garbage_blobs() {
        let mut s = StreamApp::new(100, false);
        s.restore(b"way too short");
        assert_eq!(s.state_digest(), StreamApp::new(100, false).state_digest());
        let mut r = ReqRespApp::new();
        r.restore(&[0xff; 21]); // length mismatch: 20 + line_len(0xffffffff)
        assert_eq!(r.state_digest(), ReqRespApp::new().state_digest());
        let mut k = SinkApp::new();
        k.restore(b"123");
        assert_eq!(k.consumed(), 0);
    }

    #[test]
    fn sink_counts() {
        let mut s = SinkApp::new();
        assert!(s.on_data(b"12345").is_empty());
        assert_eq!(s.consumed(), 5);
        assert_eq!(s.state_digest(), 5);
        assert_eq!(s.on_peer_close(), vec![AppAction::Close]);
    }
}
