//! Property-based tests for ST-TCP core components: heartbeat wire
//! format, counter unwrapping, detector soundness (no false positives on
//! healthy-but-stale observations; guaranteed detection of frozen peers),
//! and FIN-arbitration safety.

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;

use simnet::time::{SimDuration, SimTime};

use sttcp::applag::AppLagDetector;
use sttcp::config::Role;
use sttcp::events::FailureReason;
use sttcp::finarb::{ArbAction, FinArbiter};
use sttcp::heartbeat::{
    decode_any, unwrap_u32_near, AnyHb, ConnHb, HbFrame, HbFrameKind, HbPayload, PingReport,
};
use sttcp::recover::{ConnSnapshotMsg, CtrlMsg};
use sttcp::wire;

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn arb_snapshot_msg() -> impl Strategy<Value = ConnSnapshotMsg> {
    (
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u16>()),
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()),
        (
            proptest::option::of(any::<u64>()),
            any::<bool>(),
            any::<bool>(),
            any::<u64>(),
        ),
        (
            vec(any::<u8>(), 0..512),
            vec(any::<u8>(), 0..512),
            vec(any::<u8>(), 0..256),
        ),
    )
        .prop_map(
            |(
                (session, conn, client_ip, client_port),
                (iss, peer_isn, snd_una, rcv_start),
                (fin_offset, local_fin, peer_fin_consumed, app_digest),
                (unacked, pending, app_state),
            )| ConnSnapshotMsg {
                session,
                conn,
                client_ip,
                client_port,
                iss,
                peer_isn,
                snd_una,
                rcv_start,
                fin_offset,
                local_fin,
                peer_fin_consumed,
                app_digest,
                unacked: Bytes::from(unacked),
                pending: Bytes::from(pending),
                app_state: Bytes::from(app_state),
            },
        )
}

fn arb_conn_hb() -> impl Strategy<Value = ConnHb> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(key, lbr, lar, labw, labr, fin, rst, wd)| ConnHb {
            key,
            last_byte_received: lbr as u64,
            last_ack_received: lar as u64,
            last_app_byte_written: labw as u64,
            last_app_byte_read: labr as u64,
            fin_generated: fin,
            rst_generated: rst,
            app_suspected: wd,
        })
}

proptest! {
    // ------------------------------------------------------------------
    // Heartbeat wire format
    // ------------------------------------------------------------------

    #[test]
    fn heartbeat_roundtrips(
        seqno: u32,
        primary: bool,
        rank: u8,
        conns in vec(arb_conn_hb(), 0..50),
        ping in proptest::option::of((any::<u32>(), any::<u32>())),
    ) {
        let hb = HbPayload {
            seqno,
            role: if primary { Role::Primary } else { Role::Backup },
            rank,
            conns,
            ping: ping.map(|(f, a)| PingReport {
                consecutive_failures: f,
                attempts: a,
            }),
        };
        let wire = hb.encode();
        prop_assert_eq!(wire.len(), hb.wire_len());
        prop_assert_eq!(HbPayload::decode(&wire).unwrap(), hb);
    }

    #[test]
    fn heartbeat_truncation_always_rejected(
        conns in vec(arb_conn_hb(), 0..10),
        cut in 1usize..40,
    ) {
        let hb = HbPayload { seqno: 1, role: Role::Primary, rank: 0, conns, ping: None };
        let wire = hb.encode();
        let cut = cut.min(wire.len());
        if cut > 0 {
            prop_assert!(HbPayload::decode(&wire[..wire.len() - cut]).is_err());
        }
    }

    /// The heartbeat decoder is total: arbitrary bytes — any length,
    /// any content — either decode or return an error, never panic and
    /// never over-read. (The simnet can corrupt any frame; a panic in a
    /// decoder would turn bit rot into a crashed server.)
    #[test]
    fn heartbeat_decode_never_panics(wire in vec(any::<u8>(), 0..512)) {
        let _ = HbPayload::decode(&wire);
    }

    /// A single flipped bit anywhere in an encoded heartbeat is always
    /// rejected — the CRC turns corruption into loss, never action.
    #[test]
    fn heartbeat_any_bit_flip_rejected(
        conns in vec(arb_conn_hb(), 0..8),
        flip in any::<u32>(),
    ) {
        let hb = HbPayload { seqno: 7, role: Role::Primary, rank: 0, conns, ping: None };
        let mut wire = hb.encode().to_vec();
        let bit = flip as usize % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(HbPayload::decode(&wire).is_err());
    }

    // ------------------------------------------------------------------
    // Delta heartbeat (v2) wire format
    // ------------------------------------------------------------------

    #[test]
    fn hb_frame_roundtrips(
        hdr in (any::<u32>(), any::<bool>(), any::<u8>(), any::<bool>()),
        epochs in (any::<u32>(), any::<u32>()),
        link in 0u8..6,
        acks in vec(any::<u32>(), 1..6),
        conns in vec(arb_conn_hb(), 0..50),
        ping in proptest::option::of((any::<u32>(), any::<u32>())),
    ) {
        let (seqno, primary, rank, delta) = hdr;
        let (epoch, ack_epoch) = epochs;
        let f = HbFrame {
            kind: if delta { HbFrameKind::Delta } else { HbFrameKind::Full },
            epoch,
            link,
            ack_epoch,
            part: 0,
            parts: 1,
            acks,
            hb: HbPayload {
                seqno,
                role: if primary { Role::Primary } else { Role::Backup },
                rank,
                conns,
                ping: ping.map(|(fails, a)| PingReport {
                    consecutive_failures: fails,
                    attempts: a,
                }),
            },
        };
        let wire = f.encode();
        prop_assert_eq!(wire.len(), f.wire_len());
        prop_assert_eq!(HbFrame::decode(&wire).unwrap(), f.clone());
        // The version dispatcher must route v2 wires to the v2 decoder.
        match decode_any(&wire).unwrap() {
            AnyHb::V2(g) => prop_assert_eq!(g, f),
            AnyHb::V1(_) => prop_assert!(false, "decode_any picked v1 for a v2 wire"),
        }
    }

    #[test]
    fn hb_frame_truncation_always_rejected(
        conns in vec(arb_conn_hb(), 0..10),
        acks in vec(any::<u32>(), 1..5),
        cut in 1usize..40,
    ) {
        let f = HbFrame {
            kind: HbFrameKind::Delta,
            epoch: 9,
            link: 0,
            ack_epoch: 3,
            part: 0,
            parts: 1,
            acks,
            hb: HbPayload { seqno: 1, role: Role::Primary, rank: 0, conns, ping: None },
        };
        let wire = f.encode();
        let cut = cut.min(wire.len());
        if cut > 0 {
            prop_assert!(HbFrame::decode(&wire[..wire.len() - cut]).is_err());
            prop_assert!(decode_any(&wire[..wire.len() - cut]).is_err());
        }
    }

    /// Both v2 decoders are total: arbitrary bytes never panic.
    #[test]
    fn hb_frame_decode_never_panics(wire in vec(any::<u8>(), 0..512)) {
        let _ = HbFrame::decode(&wire);
        let _ = decode_any(&wire);
    }

    /// A single flipped bit anywhere in an encoded v2 frame is always
    /// rejected — by the v2 decoder and by the version dispatcher (a
    /// corrupted version byte must not smuggle the frame through the v1
    /// path).
    #[test]
    fn hb_frame_any_bit_flip_rejected(
        conns in vec(arb_conn_hb(), 0..8),
        acks in vec(any::<u32>(), 1..5),
        flip in any::<u32>(),
    ) {
        let f = HbFrame {
            kind: HbFrameKind::Full,
            epoch: 5,
            link: 1,
            ack_epoch: 5,
            part: 0,
            parts: 1,
            acks,
            hb: HbPayload { seqno: 7, role: Role::Primary, rank: 0, conns, ping: None },
        };
        let mut wire = f.encode().to_vec();
        let bit = flip as usize % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(HbFrame::decode(&wire).is_err());
        prop_assert!(decode_any(&wire).is_err());
    }

    // ------------------------------------------------------------------
    // Recovery control-channel wire format
    // ------------------------------------------------------------------

    /// Control messages round-trip exactly.
    #[test]
    fn ctrl_msg_roundtrips(
        conn: u32,
        from: u64,
        max: u32,
        data in vec(any::<u8>(), 0..2048),
    ) {
        let req = CtrlMsg::FetchRequest { conn, from, max };
        prop_assert_eq!(CtrlMsg::decode(&req.encode()).unwrap(), req);
        let reply = CtrlMsg::FetchReply {
            conn,
            from,
            data: Bytes::from(data),
        };
        prop_assert_eq!(CtrlMsg::decode(&reply.encode()).unwrap(), reply);
    }

    /// The re-integration messages round-trip exactly, including a full
    /// per-connection snapshot with all three opaque byte fields.
    #[test]
    fn ctrl_join_msgs_roundtrip(
        session: u32,
        conns: u32,
        new_rank: u8,
        snap in arb_snapshot_msg(),
    ) {
        for msg in [
            CtrlMsg::JoinRequest { session },
            CtrlMsg::JoinDone { session, conns, new_rank },
            CtrlMsg::JoinComplete { session },
            CtrlMsg::ConnSnapshot(snap),
        ] {
            prop_assert_eq!(CtrlMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    /// The control decoder is total on arbitrary bytes.
    #[test]
    fn ctrl_decode_never_panics(wire in vec(any::<u8>(), 0..2048)) {
        let _ = CtrlMsg::decode(&wire);
    }

    /// *Any* contiguous subslice of a valid control message — not just
    /// tail truncations — either errors or round-trips; it never panics.
    /// Pins the decoders' reads staying total through the shared
    /// `wire::read_*`/`checked_crc_frame` helpers.
    #[test]
    fn ctrl_subslice_never_panics(
        data in vec(any::<u8>(), 0..256),
        lo in 0usize..300,
        hi in 0usize..300,
    ) {
        let full = CtrlMsg::FetchReply {
            conn: 5,
            from: 99,
            data: Bytes::from(data),
        }
        .encode();
        let lo = lo.min(full.len());
        let hi = hi.min(full.len()).max(lo);
        let _ = CtrlMsg::decode(&full[lo..hi]);
    }

    /// Same for heartbeats: arbitrary windows into a valid frame are
    /// rejected or decoded, never a panic.
    #[test]
    fn heartbeat_subslice_never_panics(
        conns in vec(arb_conn_hb(), 0..10),
        lo in 0usize..300,
        hi in 0usize..300,
    ) {
        let hb = HbPayload { seqno: 3, role: Role::Backup, rank: 1, conns, ping: None };
        let full = hb.encode();
        let lo = lo.min(full.len());
        let hi = hi.min(full.len()).max(lo);
        let _ = HbPayload::decode(&full[lo..hi]);
    }

    /// The total read helpers agree with direct big-endian reads exactly
    /// when in bounds, and return `None` (never panic) otherwise.
    #[test]
    fn wire_read_helpers_are_total_and_exact(
        data in vec(any::<u8>(), 0..64),
        pos in 0usize..80,
    ) {
        match wire::read_u32_at(&data, pos) {
            Some(v) => {
                prop_assert!(pos + 4 <= data.len());
                let mut b = [0u8; 4];
                b.copy_from_slice(&data[pos..pos + 4]);
                prop_assert_eq!(v, u32::from_be_bytes(b));
            }
            None => prop_assert!(pos + 4 > data.len()),
        }
        match wire::read_u64_at(&data, pos) {
            Some(v) => {
                prop_assert!(pos + 8 <= data.len());
                let mut b = [0u8; 8];
                b.copy_from_slice(&data[pos..pos + 8]);
                prop_assert_eq!(v, u64::from_be_bytes(b));
            }
            None => prop_assert!(pos + 8 > data.len()),
        }
    }

    /// CRC-tail framing: a well-formed frame splits and verifies; every
    /// truncation of it (and every min_body above the payload) is
    /// rejected without panicking.
    #[test]
    fn crc_tail_framing_is_total(
        body in vec(any::<u8>(), 0..128),
        cut in 0usize..140,
        min_body in 0usize..140,
    ) {
        let mut framed = body.clone();
        framed.extend_from_slice(&wire::crc32(&body).to_be_bytes());
        prop_assert_eq!(wire::checked_crc_frame(&framed, body.len()), Some(&body[..]));
        if min_body > body.len() {
            prop_assert_eq!(wire::checked_crc_frame(&framed, min_body), None);
        }
        let cut = cut.min(framed.len());
        if cut > 0 {
            let short = &framed[..framed.len() - cut];
            prop_assert_eq!(wire::checked_crc_frame(short, body.len()), None);
        }
    }

    /// Any truncation of an encoded snapshot is rejected — the decoder
    /// never mistakes a cut-off byte field for a shorter valid one.
    #[test]
    fn ctrl_snapshot_truncation_always_rejected(
        snap in arb_snapshot_msg(),
        cut in 1usize..64,
    ) {
        let wire = CtrlMsg::ConnSnapshot(snap).encode();
        let cut = cut.min(wire.len());
        prop_assert!(CtrlMsg::decode(&wire[..wire.len() - cut]).is_err());
    }

    /// A single flipped bit anywhere in an encoded snapshot is rejected
    /// (CRC) — corrupt state can never be installed into a joiner.
    #[test]
    fn ctrl_snapshot_any_bit_flip_rejected(
        snap in arb_snapshot_msg(),
        flip in any::<u32>(),
    ) {
        let mut wire = CtrlMsg::ConnSnapshot(snap).encode().to_vec();
        let bit = flip as usize % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(CtrlMsg::decode(&wire).is_err());
    }

    /// Any truncation of a valid control message is rejected.
    #[test]
    fn ctrl_truncation_always_rejected(
        data in vec(any::<u8>(), 0..256),
        cut in 1usize..64,
    ) {
        let wire = CtrlMsg::FetchReply {
            conn: 3,
            from: 1 << 33,
            data: Bytes::from(data),
        }
        .encode();
        let cut = cut.min(wire.len());
        prop_assert!(CtrlMsg::decode(&wire[..wire.len() - cut]).is_err());
    }

    /// A single flipped bit anywhere in a control message is rejected.
    #[test]
    fn ctrl_any_bit_flip_rejected(
        data in vec(any::<u8>(), 0..64),
        flip in any::<u32>(),
    ) {
        let mut wire = CtrlMsg::FetchReply {
            conn: 9,
            from: 42,
            data: Bytes::from(data),
        }
        .encode()
        .to_vec();
        let bit = flip as usize % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(CtrlMsg::decode(&wire).is_err());
    }

    #[test]
    fn unwrap_recovers_any_value_within_half_space(
        true_val in 0u64..(1u64 << 45),
        skew in -(1i64 << 30)..(1i64 << 30),
    ) {
        let near = (true_val as i64 + skew).max(0) as u64;
        prop_assert_eq!(unwrap_u32_near(true_val as u32, near), true_val);
    }

    // ------------------------------------------------------------------
    // Application-lag detector soundness
    // ------------------------------------------------------------------

    /// A healthy peer whose positions refresh on every heartbeat is never
    /// condemned, at any data rate, heartbeat period, or check period.
    #[test]
    fn healthy_peer_never_condemned(
        rate_per_ms in 0u64..10_000,
        hb_ms in 50u64..1_000,
        check_ms in 10u64..100,
        run_ms in 2_000u64..8_000,
    ) {
        // Mirror the server's effective confirmation window.
        let confirm = SimDuration::from_millis(500)
            .max(SimDuration::from_millis(hb_ms * 2 + check_ms));
        let mut det = AppLagDetector::new(64 * 1024, SimDuration::from_secs(2), confirm);
        let mut peer_reported = 0u64;
        let mut next_hb = 0u64;
        let mut ms = 0u64;
        while ms < run_ms {
            let my_pos = ms * rate_per_ms;
            if ms >= next_hb {
                // Peer is healthy: its position at HB time equals ours.
                peer_reported = my_pos;
                next_hb += hb_ms;
            }
            let verdict = det.check(t(ms), my_pos, my_pos, peer_reported, peer_reported);
            prop_assert_eq!(verdict, None, "false positive at {}ms", ms);
            ms += check_ms;
        }
    }

    /// A frozen peer (crashed application) is always condemned within
    /// max(AppMaxLagTime, confirm) + one heartbeat of slack, provided the
    /// local side keeps making progress.
    #[test]
    fn frozen_peer_always_condemned(
        rate_per_ms in 100u64..10_000,
        hb_ms in 50u64..500,
        freeze_at_ms in 500u64..2_000,
    ) {
        let check_ms = 50u64;
        let confirm = SimDuration::from_millis(500)
            .max(SimDuration::from_millis(hb_ms * 2 + check_ms));
        let max_time = SimDuration::from_secs(2);
        let mut det = AppLagDetector::new(64 * 1024, max_time, confirm);
        let mut peer_reported = 0u64;
        let mut next_hb = 0u64;
        let freeze_pos = freeze_at_ms * rate_per_ms;
        let mut fired_at = None;
        let mut ms = 0u64;
        while ms < freeze_at_ms + 10_000 {
            let my_pos = ms * rate_per_ms;
            if ms >= next_hb {
                peer_reported = my_pos.min(freeze_pos);
                next_hb += hb_ms;
            }
            if det
                .check(t(ms), my_pos, my_pos, peer_reported, peer_reported)
                .is_some()
            {
                fired_at = Some(ms);
                break;
            }
            ms += check_ms;
        }
        let fired_at = fired_at.expect("frozen peer must be condemned");
        prop_assert!(fired_at >= freeze_at_ms, "condemned before the freeze");
        let bound = freeze_at_ms
            + max_time.as_millis().max(confirm.as_millis())
            + hb_ms
            + 2 * check_ms;
        prop_assert!(
            fired_at <= bound,
            "detection at {}ms exceeds bound {}ms",
            fired_at,
            bound
        );
    }

    /// The reason is AppLagBytes when the byte threshold is crossed with
    /// a stalled peer, AppLagTime otherwise — and only those two reasons
    /// ever come out of the detector.
    #[test]
    fn detector_reasons_are_in_range(
        observations in vec((0u64..1_000_000, 0u64..1_000_000), 1..50),
    ) {
        let mut det = AppLagDetector::new(
            10_000,
            SimDuration::from_millis(700),
            SimDuration::from_millis(300),
        );
        for (i, (mine, peers)) in observations.into_iter().enumerate() {
            if let Some(r) = det.check(t(i as u64 * 100), mine, mine, peers, peers) {
                prop_assert!(matches!(
                    r,
                    FailureReason::AppLagBytes | FailureReason::AppLagTime
                ));
            }
        }
    }

    // ------------------------------------------------------------------
    // FIN arbitration safety
    // ------------------------------------------------------------------

    /// Whatever the event order, a primary-side arbiter (a) never issues
    /// DeclarePeerFailed once the local side has closed too, and (b)
    /// releases a held FIN at most once.
    #[test]
    fn finarb_safety_under_arbitrary_event_orders(events in vec(0u8..5, 1..30)) {
        let mut arb = FinArbiter::new(Role::Primary, SimDuration::from_secs(10));
        let mut releases = 0;
        let mut verdicts = 0;
        let mut local_closed = false;
        let mut clock = 0u64;
        for e in events {
            clock += 500;
            let action = match e {
                0 => {
                    if local_closed { continue; }
                    local_closed = true;
                    Some(arb.on_local_close(t(clock)))
                }
                1 => arb.on_peer_hb(t(clock), true),
                2 => arb.note_client_fin(t(clock)),
                3 => arb.on_check(t(clock + 60_000)), // deadlines long past
                _ => arb.on_peer_failed(),
            };
            match action {
                Some(ArbAction::ReleaseFin(_)) => releases += 1,
                Some(ArbAction::DeclarePeerFailed) => {
                    verdicts += 1;
                    prop_assert!(!local_closed, "verdict after local close");
                }
                _ => {}
            }
        }
        prop_assert!(releases <= 1, "FIN released {releases} times");
        prop_assert!(verdicts <= 1, "peer condemned {verdicts} times");
    }
}
