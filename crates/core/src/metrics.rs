//! Per-server runtime metrics.
//!
//! A [`ServerMetrics`] rides inside each [`crate::server::StTcpServer`]
//! and is fed from the protocol hot paths: heartbeat arrival, the
//! periodic check timer, recovery fetch/replay, and failure verdicts.
//! Everything is a fixed-size counter, gauge, or fixed-bucket histogram
//! from the `obs` crate, so recording never allocates; serialization to
//! the [`obs::report::MetricsReport`] `core` section happens only when a
//! harness asks for it.

use obs::json::Json;
use obs::metrics::{Counter, Gauge, Histogram};
use simnet::time::SimTime;

use crate::events::{FailureReason, HbLink};

/// Metrics for one heartbeat link.
#[derive(Debug, Clone)]
struct HbLinkMetrics {
    /// Inter-arrival times of heartbeats on this link, in microseconds.
    inter_arrival: Histogram,
    /// Heartbeats received.
    received: Counter,
    last_rx: Option<SimTime>,
}

impl HbLinkMetrics {
    fn new() -> HbLinkMetrics {
        HbLinkMetrics {
            inter_arrival: Histogram::latency_us(),
            received: Counter::new(),
            last_rx: None,
        }
    }

    fn on_heartbeat(&mut self, now: SimTime) {
        self.received.inc();
        if let Some(prev) = self.last_rx {
            self.inter_arrival
                .observe_duration(now.saturating_since(prev));
        }
        self.last_rx = Some(now);
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("received", Json::U64(self.received.get()));
        o.set("inter_arrival_us", self.inter_arrival.to_json());
        o
    }
}

/// Heartbeat bandwidth totals: what the primary's state announcements
/// cost on the wire, split into per-connection payload and framing
/// (header + optional ping trailer) overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HbBandwidth {
    /// Emit rounds (one per heartbeat timer tick that sent state).
    pub rounds: u64,
    /// Heartbeat frames sent (rounds × destinations × links).
    pub frames: u64,
    /// Per-connection entry bytes summed over every frame.
    pub payload_bytes: u64,
    /// Header and ping-trailer bytes summed over every frame.
    pub framing_bytes: u64,
    /// Connection entries summed over every frame.
    pub conn_entries: u64,
}

impl HbBandwidth {
    /// Total bytes on the wire (payload + framing).
    pub fn total_bytes(&self) -> u64 {
        self.payload_bytes + self.framing_bytes
    }

    /// Average wire bytes per emit round (integer, 0 when idle).
    pub fn bytes_per_round(&self) -> u64 {
        self.total_bytes().checked_div(self.rounds).unwrap_or(0)
    }

    /// Average payload bytes per announced connection entry (integer,
    /// 0 when no entries were sent).
    pub fn bytes_per_conn(&self) -> u64 {
        self.payload_bytes
            .checked_div(self.conn_entries)
            .unwrap_or(0)
    }

    /// This accounting as a JSON object (nested under
    /// `heartbeat.bandwidth` in the server's metrics slice).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("rounds", Json::U64(self.rounds));
        o.set("frames", Json::U64(self.frames));
        o.set("payload_bytes", Json::U64(self.payload_bytes));
        o.set("framing_bytes", Json::U64(self.framing_bytes));
        o.set("total_bytes", Json::U64(self.total_bytes()));
        o.set("conn_entries", Json::U64(self.conn_entries));
        o.set("bytes_per_round", Json::U64(self.bytes_per_round()));
        o.set("bytes_per_conn", Json::U64(self.bytes_per_conn()));
        o
    }
}

/// Counters, gauges, and histograms fed from the ST-TCP hot paths.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    hb_ip: HbLinkMetrics,
    hb_serial: HbLinkMetrics,
    /// Outbound heartbeat bandwidth accounting.
    hb_bandwidth: HbBandwidth,
    /// Hold-buffer (extended receive buffer) occupancy high-water mark.
    hold: Gauge,
    /// Bytes this primary served to the backup's fetch requests.
    fetch_bytes_served: Counter,
    /// Bytes this backup replayed into its stream from fetch replies.
    replay_bytes: Counter,
    /// Failure verdicts, indexed like [`FailureReason::ALL`].
    verdicts: [Counter; FailureReason::ALL.len()],
    /// Congestion-window samples across connections, in bytes.
    cwnd: Histogram,
    /// Send-buffer occupancy (unacked bytes), summed across connections.
    send_occupancy: Gauge,
    /// Receive-side occupancy (readable + out-of-order), summed across
    /// connections.
    recv_occupancy: Gauge,
    /// Semantically corrupt heartbeat payloads rejected by the sanity
    /// check (CRC-valid but with impossible counter regressions).
    byzantine_rejected: Counter,
    /// Pool strength: this member plus every live, non-fenced peer.
    /// Stays 0 in pair mode.
    pool_strength: Gauge,
}

impl Default for ServerMetrics {
    fn default() -> ServerMetrics {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            hb_ip: HbLinkMetrics::new(),
            hb_serial: HbLinkMetrics::new(),
            hb_bandwidth: HbBandwidth::default(),
            hold: Gauge::new(),
            fetch_bytes_served: Counter::new(),
            replay_bytes: Counter::new(),
            verdicts: [Counter::new(); FailureReason::ALL.len()],
            cwnd: Histogram::bytes(),
            send_occupancy: Gauge::new(),
            recv_occupancy: Gauge::new(),
            byzantine_rejected: Counter::new(),
            pool_strength: Gauge::new(),
        }
    }

    /// Records a heartbeat payload rejected as semantically corrupt.
    pub fn on_byzantine_rejected(&mut self) {
        self.byzantine_rejected.inc();
    }

    /// Heartbeat payloads rejected as semantically corrupt so far.
    pub fn byzantine_rejected(&self) -> u64 {
        self.byzantine_rejected.get()
    }

    /// Samples the pool strength (called per check period in pool mode).
    pub fn sample_pool_strength(&mut self, members: u64) {
        self.pool_strength.set(members);
    }

    /// The most recent pool-strength sample (0 in pair mode).
    pub fn pool_strength(&self) -> u64 {
        self.pool_strength.get()
    }

    /// Records one emit round of outbound heartbeat state: `frames`
    /// frames carrying `conn_entries` connection entries in total,
    /// split into `payload_bytes` of entry data and `framing_bytes` of
    /// header/trailer overhead.
    pub fn on_hb_round(
        &mut self,
        frames: u64,
        conn_entries: u64,
        payload_bytes: u64,
        framing_bytes: u64,
    ) {
        self.hb_bandwidth.rounds += 1;
        self.hb_bandwidth.frames += frames;
        self.hb_bandwidth.conn_entries += conn_entries;
        self.hb_bandwidth.payload_bytes += payload_bytes;
        self.hb_bandwidth.framing_bytes += framing_bytes;
    }

    /// The outbound heartbeat bandwidth accounting so far.
    pub fn hb_bandwidth(&self) -> HbBandwidth {
        self.hb_bandwidth
    }

    /// Records a heartbeat arriving on `link`.
    pub fn on_heartbeat(&mut self, link: HbLink, now: SimTime) {
        match link {
            HbLink::Ip => self.hb_ip.on_heartbeat(now),
            HbLink::Serial => self.hb_serial.on_heartbeat(now),
        }
    }

    /// Records a failure verdict.
    pub fn on_verdict(&mut self, reason: FailureReason) {
        let i = FailureReason::ALL
            .iter()
            .position(|&r| r == reason)
            .unwrap();
        self.verdicts[i].inc();
    }

    /// How many times `reason` fired.
    pub fn verdict_count(&self, reason: FailureReason) -> u64 {
        let i = FailureReason::ALL
            .iter()
            .position(|&r| r == reason)
            .unwrap();
        self.verdicts[i].get()
    }

    /// Samples the hold-buffer occupancy (called per check period).
    pub fn sample_hold(&mut self, used: u64) {
        self.hold.set(used);
    }

    /// The hold-buffer high-water mark.
    pub fn hold_high_water(&self) -> u64 {
        self.hold.high_water()
    }

    /// Records bytes served to a backup fetch request.
    pub fn on_fetch_served(&mut self, bytes: u64) {
        self.fetch_bytes_served.add(bytes);
    }

    /// Records bytes replayed into the local stream from a fetch reply.
    pub fn on_replay(&mut self, bytes: u64) {
        self.replay_bytes.add(bytes);
    }

    /// Bytes served to fetch requests so far.
    pub fn fetch_bytes_served(&self) -> u64 {
        self.fetch_bytes_served.get()
    }

    /// Bytes replayed from fetch replies so far.
    pub fn replay_bytes(&self) -> u64 {
        self.replay_bytes.get()
    }

    /// Samples per-connection TCP state, summed across live connections
    /// (called per check period).
    pub fn sample_tcp(&mut self, cwnd_sum: u64, send_occupancy: u64, recv_occupancy: u64) {
        self.cwnd.observe(cwnd_sum);
        self.send_occupancy.set(send_occupancy);
        self.recv_occupancy.set(recv_occupancy);
    }

    /// Heartbeats received on `link`.
    pub fn hb_received(&self, link: HbLink) -> u64 {
        match link {
            HbLink::Ip => self.hb_ip.received.get(),
            HbLink::Serial => self.hb_serial.received.get(),
        }
    }

    /// The heartbeat inter-arrival histogram for `link` (microseconds).
    pub fn hb_inter_arrival(&self, link: HbLink) -> &Histogram {
        match link {
            HbLink::Ip => &self.hb_ip.inter_arrival,
            HbLink::Serial => &self.hb_serial.inter_arrival,
        }
    }

    /// The full metrics as a JSON object (one server's slice of the
    /// report's `core` section).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        let mut hb = Json::obj();
        hb.set("ip", self.hb_ip.to_json());
        hb.set("serial", self.hb_serial.to_json());
        hb.set("bandwidth", self.hb_bandwidth.to_json());
        o.set("heartbeat", hb);
        o.set("hold_high_water_bytes", Json::U64(self.hold.high_water()));
        o.set(
            "fetch_bytes_served",
            Json::U64(self.fetch_bytes_served.get()),
        );
        o.set("replay_bytes", Json::U64(self.replay_bytes.get()));
        let mut v = Json::obj();
        for (reason, c) in FailureReason::ALL.iter().zip(self.verdicts.iter()) {
            if c.get() > 0 {
                v.set(reason.key(), Json::U64(c.get()));
            }
        }
        o.set("verdicts", v);
        o.set("cwnd_bytes", self.cwnd.to_json());
        o.set(
            "send_occupancy_high_water",
            Json::U64(self.send_occupancy.high_water()),
        );
        o.set(
            "recv_occupancy_high_water",
            Json::U64(self.recv_occupancy.high_water()),
        );
        o.set(
            "byzantine_rejected",
            Json::U64(self.byzantine_rejected.get()),
        );
        o.set("pool_strength", self.pool_strength.to_json());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;

    #[test]
    fn heartbeat_interarrival_is_tracked_per_link() {
        let mut m = ServerMetrics::new();
        for i in 0..5 {
            m.on_heartbeat(
                HbLink::Ip,
                SimTime::ZERO + SimDuration::from_millis(100) * i,
            );
        }
        m.on_heartbeat(HbLink::Serial, SimTime::from_millis(500));
        assert_eq!(m.hb_received(HbLink::Ip), 5);
        assert_eq!(m.hb_received(HbLink::Serial), 1);
        // 5 arrivals ⇒ 4 gaps of 100ms each.
        let h = m.hb_inter_arrival(HbLink::Ip);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 4 * 100_000);
        assert_eq!(m.hb_inter_arrival(HbLink::Serial).count(), 0);
    }

    #[test]
    fn verdicts_count_per_reason() {
        let mut m = ServerMetrics::new();
        m.on_verdict(FailureReason::HbBothLinksDown);
        m.on_verdict(FailureReason::HbBothLinksDown);
        m.on_verdict(FailureReason::HoldOverflow);
        assert_eq!(m.verdict_count(FailureReason::HbBothLinksDown), 2);
        assert_eq!(m.verdict_count(FailureReason::HoldOverflow), 1);
        assert_eq!(m.verdict_count(FailureReason::AppLagTime), 0);
        let j = m.to_json().to_string();
        assert!(j.contains("\"hb_both_links_down\":2"));
        assert!(!j.contains("app_lag_time"), "zero verdicts are omitted");
    }

    #[test]
    fn gauges_keep_high_water_marks() {
        let mut m = ServerMetrics::new();
        m.sample_hold(100);
        m.sample_hold(4096);
        m.sample_hold(10);
        assert_eq!(m.hold_high_water(), 4096);
        m.sample_tcp(1460, 2920, 512);
        m.sample_tcp(2920, 100, 4096);
        let j = m.to_json().to_string();
        assert!(j.contains("\"send_occupancy_high_water\":2920"));
        assert!(j.contains("\"recv_occupancy_high_water\":4096"));
    }

    #[test]
    fn hb_bandwidth_accumulates_and_averages() {
        let mut m = ServerMetrics::new();
        assert_eq!(m.hb_bandwidth(), HbBandwidth::default());
        // Two rounds, two frames each (IP + serial), one conn of 21B
        // payload behind 13B of header per frame.
        m.on_hb_round(2, 2, 42, 26);
        m.on_hb_round(2, 2, 42, 26);
        let bw = m.hb_bandwidth();
        assert_eq!(bw.rounds, 2);
        assert_eq!(bw.frames, 4);
        assert_eq!(bw.total_bytes(), 136);
        assert_eq!(bw.bytes_per_round(), 68);
        assert_eq!(bw.bytes_per_conn(), 21);
        let j = m.to_json().to_string();
        assert!(j.contains("\"bandwidth\":{\"rounds\":2"));
        assert!(j.contains("\"bytes_per_conn\":21"));
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut m = ServerMetrics::new();
        m.on_fetch_served(1000);
        m.on_fetch_served(500);
        m.on_replay(1460);
        assert_eq!(m.fetch_bytes_served(), 1500);
        assert_eq!(m.replay_bytes(), 1460);
    }
}
