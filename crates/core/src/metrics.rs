//! Per-server runtime metrics.
//!
//! A [`ServerMetrics`] rides inside each [`crate::server::StTcpServer`]
//! and is fed from the protocol hot paths: heartbeat arrival, the
//! periodic check timer, recovery fetch/replay, and failure verdicts.
//! Everything is a fixed-size counter, gauge, or fixed-bucket histogram
//! from the `obs` crate, so recording never allocates; serialization to
//! the [`obs::report::MetricsReport`] `core` section happens only when a
//! harness asks for it.

use obs::json::Json;
use obs::metrics::{Counter, Gauge, Histogram};
use simnet::time::SimTime;

use crate::events::{FailureReason, HbLink};

/// Metrics for one heartbeat link.
#[derive(Debug, Clone)]
struct HbLinkMetrics {
    /// Inter-arrival times of heartbeats on this link, in microseconds.
    inter_arrival: Histogram,
    /// Heartbeats received.
    received: Counter,
    last_rx: Option<SimTime>,
}

impl HbLinkMetrics {
    fn new() -> HbLinkMetrics {
        HbLinkMetrics {
            inter_arrival: Histogram::latency_us(),
            received: Counter::new(),
            last_rx: None,
        }
    }

    fn on_heartbeat(&mut self, now: SimTime) {
        self.received.inc();
        if let Some(prev) = self.last_rx {
            self.inter_arrival
                .observe_duration(now.saturating_since(prev));
        }
        self.last_rx = Some(now);
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("received", Json::U64(self.received.get()));
        o.set("inter_arrival_us", self.inter_arrival.to_json());
        o
    }
}

/// Counters, gauges, and histograms fed from the ST-TCP hot paths.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    hb_ip: HbLinkMetrics,
    hb_serial: HbLinkMetrics,
    /// Hold-buffer (extended receive buffer) occupancy high-water mark.
    hold: Gauge,
    /// Bytes this primary served to the backup's fetch requests.
    fetch_bytes_served: Counter,
    /// Bytes this backup replayed into its stream from fetch replies.
    replay_bytes: Counter,
    /// Failure verdicts, indexed like [`FailureReason::ALL`].
    verdicts: [Counter; FailureReason::ALL.len()],
    /// Congestion-window samples across connections, in bytes.
    cwnd: Histogram,
    /// Send-buffer occupancy (unacked bytes), summed across connections.
    send_occupancy: Gauge,
    /// Receive-side occupancy (readable + out-of-order), summed across
    /// connections.
    recv_occupancy: Gauge,
    /// Semantically corrupt heartbeat payloads rejected by the sanity
    /// check (CRC-valid but with impossible counter regressions).
    byzantine_rejected: Counter,
    /// Pool strength: this member plus every live, non-fenced peer.
    /// Stays 0 in pair mode.
    pool_strength: Gauge,
}

impl Default for ServerMetrics {
    fn default() -> ServerMetrics {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            hb_ip: HbLinkMetrics::new(),
            hb_serial: HbLinkMetrics::new(),
            hold: Gauge::new(),
            fetch_bytes_served: Counter::new(),
            replay_bytes: Counter::new(),
            verdicts: [Counter::new(); FailureReason::ALL.len()],
            cwnd: Histogram::bytes(),
            send_occupancy: Gauge::new(),
            recv_occupancy: Gauge::new(),
            byzantine_rejected: Counter::new(),
            pool_strength: Gauge::new(),
        }
    }

    /// Records a heartbeat payload rejected as semantically corrupt.
    pub fn on_byzantine_rejected(&mut self) {
        self.byzantine_rejected.inc();
    }

    /// Heartbeat payloads rejected as semantically corrupt so far.
    pub fn byzantine_rejected(&self) -> u64 {
        self.byzantine_rejected.get()
    }

    /// Samples the pool strength (called per check period in pool mode).
    pub fn sample_pool_strength(&mut self, members: u64) {
        self.pool_strength.set(members);
    }

    /// The most recent pool-strength sample (0 in pair mode).
    pub fn pool_strength(&self) -> u64 {
        self.pool_strength.get()
    }

    /// Records a heartbeat arriving on `link`.
    pub fn on_heartbeat(&mut self, link: HbLink, now: SimTime) {
        match link {
            HbLink::Ip => self.hb_ip.on_heartbeat(now),
            HbLink::Serial => self.hb_serial.on_heartbeat(now),
        }
    }

    /// Records a failure verdict.
    pub fn on_verdict(&mut self, reason: FailureReason) {
        let i = FailureReason::ALL
            .iter()
            .position(|&r| r == reason)
            .unwrap();
        self.verdicts[i].inc();
    }

    /// How many times `reason` fired.
    pub fn verdict_count(&self, reason: FailureReason) -> u64 {
        let i = FailureReason::ALL
            .iter()
            .position(|&r| r == reason)
            .unwrap();
        self.verdicts[i].get()
    }

    /// Samples the hold-buffer occupancy (called per check period).
    pub fn sample_hold(&mut self, used: u64) {
        self.hold.set(used);
    }

    /// The hold-buffer high-water mark.
    pub fn hold_high_water(&self) -> u64 {
        self.hold.high_water()
    }

    /// Records bytes served to a backup fetch request.
    pub fn on_fetch_served(&mut self, bytes: u64) {
        self.fetch_bytes_served.add(bytes);
    }

    /// Records bytes replayed into the local stream from a fetch reply.
    pub fn on_replay(&mut self, bytes: u64) {
        self.replay_bytes.add(bytes);
    }

    /// Bytes served to fetch requests so far.
    pub fn fetch_bytes_served(&self) -> u64 {
        self.fetch_bytes_served.get()
    }

    /// Bytes replayed from fetch replies so far.
    pub fn replay_bytes(&self) -> u64 {
        self.replay_bytes.get()
    }

    /// Samples per-connection TCP state, summed across live connections
    /// (called per check period).
    pub fn sample_tcp(&mut self, cwnd_sum: u64, send_occupancy: u64, recv_occupancy: u64) {
        self.cwnd.observe(cwnd_sum);
        self.send_occupancy.set(send_occupancy);
        self.recv_occupancy.set(recv_occupancy);
    }

    /// Heartbeats received on `link`.
    pub fn hb_received(&self, link: HbLink) -> u64 {
        match link {
            HbLink::Ip => self.hb_ip.received.get(),
            HbLink::Serial => self.hb_serial.received.get(),
        }
    }

    /// The heartbeat inter-arrival histogram for `link` (microseconds).
    pub fn hb_inter_arrival(&self, link: HbLink) -> &Histogram {
        match link {
            HbLink::Ip => &self.hb_ip.inter_arrival,
            HbLink::Serial => &self.hb_serial.inter_arrival,
        }
    }

    /// The full metrics as a JSON object (one server's slice of the
    /// report's `core` section).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        let mut hb = Json::obj();
        hb.set("ip", self.hb_ip.to_json());
        hb.set("serial", self.hb_serial.to_json());
        o.set("heartbeat", hb);
        o.set("hold_high_water_bytes", Json::U64(self.hold.high_water()));
        o.set(
            "fetch_bytes_served",
            Json::U64(self.fetch_bytes_served.get()),
        );
        o.set("replay_bytes", Json::U64(self.replay_bytes.get()));
        let mut v = Json::obj();
        for (reason, c) in FailureReason::ALL.iter().zip(self.verdicts.iter()) {
            if c.get() > 0 {
                v.set(reason.key(), Json::U64(c.get()));
            }
        }
        o.set("verdicts", v);
        o.set("cwnd_bytes", self.cwnd.to_json());
        o.set(
            "send_occupancy_high_water",
            Json::U64(self.send_occupancy.high_water()),
        );
        o.set(
            "recv_occupancy_high_water",
            Json::U64(self.recv_occupancy.high_water()),
        );
        o.set(
            "byzantine_rejected",
            Json::U64(self.byzantine_rejected.get()),
        );
        o.set("pool_strength", self.pool_strength.to_json());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;

    #[test]
    fn heartbeat_interarrival_is_tracked_per_link() {
        let mut m = ServerMetrics::new();
        for i in 0..5 {
            m.on_heartbeat(
                HbLink::Ip,
                SimTime::ZERO + SimDuration::from_millis(100) * i,
            );
        }
        m.on_heartbeat(HbLink::Serial, SimTime::from_millis(500));
        assert_eq!(m.hb_received(HbLink::Ip), 5);
        assert_eq!(m.hb_received(HbLink::Serial), 1);
        // 5 arrivals ⇒ 4 gaps of 100ms each.
        let h = m.hb_inter_arrival(HbLink::Ip);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 4 * 100_000);
        assert_eq!(m.hb_inter_arrival(HbLink::Serial).count(), 0);
    }

    #[test]
    fn verdicts_count_per_reason() {
        let mut m = ServerMetrics::new();
        m.on_verdict(FailureReason::HbBothLinksDown);
        m.on_verdict(FailureReason::HbBothLinksDown);
        m.on_verdict(FailureReason::HoldOverflow);
        assert_eq!(m.verdict_count(FailureReason::HbBothLinksDown), 2);
        assert_eq!(m.verdict_count(FailureReason::HoldOverflow), 1);
        assert_eq!(m.verdict_count(FailureReason::AppLagTime), 0);
        let j = m.to_json().to_string();
        assert!(j.contains("\"hb_both_links_down\":2"));
        assert!(!j.contains("app_lag_time"), "zero verdicts are omitted");
    }

    #[test]
    fn gauges_keep_high_water_marks() {
        let mut m = ServerMetrics::new();
        m.sample_hold(100);
        m.sample_hold(4096);
        m.sample_hold(10);
        assert_eq!(m.hold_high_water(), 4096);
        m.sample_tcp(1460, 2920, 512);
        m.sample_tcp(2920, 100, 4096);
        let j = m.to_json().to_string();
        assert!(j.contains("\"send_occupancy_high_water\":2920"));
        assert!(j.contains("\"recv_occupancy_high_water\":4096"));
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut m = ServerMetrics::new();
        m.on_fetch_served(1000);
        m.on_fetch_served(500);
        m.on_replay(1460);
        assert_eq!(m.fetch_bytes_served(), 1500);
        assert_eq!(m.replay_bytes(), 1460);
    }
}
