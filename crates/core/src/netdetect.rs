//! The local-network (NIC/cable) failure detector (§4.3).
//!
//! Engaged only in the signature condition of Table 1 row 4: the IP-link
//! heartbeat is dead while the serial-link heartbeat is alive. Three
//! mechanisms, in the paper's order of preference:
//!
//! 1. **Client-byte lag** — if the client is sending, the server whose NIC
//!    died stops receiving; compare `LastByteReceived` across the serial
//!    heartbeat.
//! 2. **Client-ack lag** — for server-push workloads the client sends only
//!    ACKs; compare `LastAckReceived`. Catches a dead *backup* NIC but not
//!    a dead *primary* NIC (no data reaches the client, so nobody gets
//!    ACKs).
//! 3. **Gateway ping** — both servers ping the gateway and exchange the
//!    results over the serial heartbeat; the server whose pings keep
//!    failing while its peer's succeed is the one with the dead NIC.

use simnet::time::{SimDuration, SimTime};

use crate::events::FailureReason;
use crate::heartbeat::PingReport;

/// Aggregated observations for one detector evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetObservation {
    /// Sum of `LastByteReceived` over this server's connections.
    pub my_bytes: u64,
    /// Sum of the peer's `LastByteReceived` (from the serial heartbeat).
    pub peer_bytes: u64,
    /// Sum of `LastAckReceived` over this server's connections.
    pub my_acks: u64,
    /// Sum of the peer's `LastAckReceived`.
    pub peer_acks: u64,
    /// This server's own gateway-ping campaign state.
    pub my_ping: Option<PingReport>,
    /// The peer's ping report from the serial heartbeat.
    pub peer_ping: Option<PingReport>,
}

/// Lag state with heartbeat-staleness tolerance: the byte threshold must
/// persist for a confirmation window, and the time criterion ages the
/// oldest position the peer has not yet matched (see
/// [`crate::applag`] for the full rationale — the serial heartbeat has
/// the same staleness as the IP one).
#[derive(Debug, Clone, Default)]
struct NetLagTrack {
    peer_last: u64,
    peer_progress_at: Option<SimTime>,
    watermarks: std::collections::VecDeque<(u64, SimTime)>,
}

impl NetLagTrack {
    fn update(
        &mut self,
        now: SimTime,
        mine: u64,
        peers: u64,
        max_bytes: u64,
        max_time: SimDuration,
        confirm: SimDuration,
    ) -> bool {
        if peers > self.peer_last || self.peer_progress_at.is_none() {
            self.peer_last = peers;
            self.peer_progress_at = Some(now);
        }
        match self.watermarks.back() {
            Some(&(pos, _)) if pos >= mine => {}
            _ if mine > peers => self.watermarks.push_back((mine, now)),
            _ => {}
        }
        while self
            .watermarks
            .front()
            .is_some_and(|&(pos, _)| peers >= pos)
        {
            self.watermarks.pop_front();
        }
        if peers >= mine {
            return false;
        }
        let peer_stalled = self
            .peer_progress_at
            .is_some_and(|at| now.saturating_since(at) >= confirm);
        if mine - peers >= max_bytes && peer_stalled {
            return true;
        }
        self.watermarks
            .front()
            .is_some_and(|&(_, when)| now.saturating_since(when) >= max_time)
    }
}

/// Local-network failure detector. One per server (aggregated across
/// connections).
#[derive(Debug, Clone)]
pub struct NetFailureDetector {
    lag_bytes: u64,
    lag_time: SimDuration,
    confirm: SimDuration,
    ping_fail_threshold: u32,
    byte_lag: NetLagTrack,
    ack_lag: NetLagTrack,
}

impl NetFailureDetector {
    /// Creates a detector with the byte/time lag thresholds, the
    /// staleness-confirmation window (must exceed the heartbeat period),
    /// and the consecutive-ping-failure threshold.
    pub fn new(
        lag_bytes: u64,
        lag_time: SimDuration,
        confirm: SimDuration,
        ping_fail_threshold: u32,
    ) -> Self {
        NetFailureDetector {
            lag_bytes,
            lag_time,
            confirm,
            ping_fail_threshold,
            byte_lag: NetLagTrack::default(),
            ack_lag: NetLagTrack::default(),
        }
    }

    /// Evaluates one observation. **Only call while the IP heartbeat is
    /// dead and the serial heartbeat is alive** — outside that condition
    /// the verdicts are meaningless; call [`NetFailureDetector::reset`]
    /// instead.
    pub fn check(&mut self, now: SimTime, obs: &NetObservation) -> Option<FailureReason> {
        if self.byte_lag.update(
            now,
            obs.my_bytes,
            obs.peer_bytes,
            self.lag_bytes,
            self.lag_time,
            self.confirm,
        ) {
            return Some(FailureReason::NetByteLag);
        }
        if self.ack_lag.update(
            now,
            obs.my_acks,
            obs.peer_acks,
            self.lag_bytes,
            self.lag_time,
            self.confirm,
        ) {
            return Some(FailureReason::NetAckLag);
        }
        if let (Some(mine), Some(peers)) = (obs.my_ping, obs.peer_ping) {
            if peers.consecutive_failures >= self.ping_fail_threshold
                && mine.consecutive_failures == 0
                && mine.attempts > 0
            {
                return Some(FailureReason::NetPingFail);
            }
        }
        None
    }

    /// Clears lag history (call whenever the engagement condition stops
    /// holding).
    pub fn reset(&mut self) {
        self.byte_lag = NetLagTrack::default();
        self.ack_lag = NetLagTrack::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn det() -> NetFailureDetector {
        NetFailureDetector::new(
            1_000,
            SimDuration::from_millis(500),
            SimDuration::from_millis(200),
            3,
        )
    }

    fn obs() -> NetObservation {
        NetObservation::default()
    }

    #[test]
    fn quiet_network_no_verdict() {
        let mut d = det();
        assert_eq!(d.check(t(0), &obs()), None);
    }

    #[test]
    fn big_byte_lag_fires_after_confirmation() {
        let mut d = det();
        let o = NetObservation {
            my_bytes: 5_000,
            peer_bytes: 100,
            ..obs()
        };
        assert_eq!(d.check(t(0), &o), None);
        assert_eq!(d.check(t(200), &o), Some(FailureReason::NetByteLag));
    }

    #[test]
    fn small_byte_lag_needs_time() {
        let mut d = det();
        let o = NetObservation {
            my_bytes: 500,
            peer_bytes: 100,
            ..obs()
        };
        assert_eq!(d.check(t(0), &o), None);
        assert_eq!(d.check(t(499), &o), None);
        assert_eq!(d.check(t(500), &o), Some(FailureReason::NetByteLag));
    }

    #[test]
    fn ack_lag_detected_for_server_push() {
        let mut d = det();
        let o = NetObservation {
            my_acks: 100_000,
            peer_acks: 50_000,
            ..obs()
        };
        assert_eq!(d.check(t(0), &o), None);
        assert_eq!(d.check(t(200), &o), Some(FailureReason::NetAckLag));
    }

    #[test]
    fn heartbeat_sawtooth_never_fires() {
        let mut d = det();
        let mut mine = 0u64;
        let mut peers = 0u64;
        for ms in (0..3_000u64).step_by(50) {
            mine += 50_000;
            if ms % 150 == 0 {
                peers = mine;
            }
            let o = NetObservation {
                my_bytes: mine,
                peer_bytes: peers,
                ..obs()
            };
            assert_eq!(d.check(t(ms), &o), None, "false positive at {ms}ms");
        }
    }

    #[test]
    fn peer_ahead_is_never_a_peer_failure() {
        let mut d = det();
        let o = NetObservation {
            my_bytes: 100,
            peer_bytes: 9_999,
            my_acks: 0,
            peer_acks: 9_999,
            ..obs()
        };
        for ms in (0..5_000).step_by(100) {
            assert_eq!(d.check(t(ms), &o), None);
        }
    }

    #[test]
    fn ping_mismatch_condemns_peer() {
        let mut d = det();
        let o = NetObservation {
            my_ping: Some(PingReport {
                consecutive_failures: 0,
                attempts: 5,
            }),
            peer_ping: Some(PingReport {
                consecutive_failures: 3,
                attempts: 5,
            }),
            ..obs()
        };
        assert_eq!(d.check(t(0), &o), Some(FailureReason::NetPingFail));
    }

    #[test]
    fn ping_needs_local_success_evidence() {
        let mut d = det();
        // Both failing: the gateway may be down; no verdict.
        let both = NetObservation {
            my_ping: Some(PingReport {
                consecutive_failures: 3,
                attempts: 5,
            }),
            peer_ping: Some(PingReport {
                consecutive_failures: 3,
                attempts: 5,
            }),
            ..obs()
        };
        assert_eq!(d.check(t(0), &both), None);
        // No local attempts yet: not enough evidence.
        let unproven = NetObservation {
            my_ping: Some(PingReport {
                consecutive_failures: 0,
                attempts: 0,
            }),
            peer_ping: Some(PingReport {
                consecutive_failures: 5,
                attempts: 5,
            }),
            ..obs()
        };
        assert_eq!(d.check(t(0), &unproven), None);
    }

    #[test]
    fn catching_up_resets_clock() {
        let mut d = det();
        let lag = NetObservation {
            my_bytes: 500,
            peer_bytes: 100,
            ..obs()
        };
        assert_eq!(d.check(t(0), &lag), None);
        let caught = NetObservation {
            my_bytes: 500,
            peer_bytes: 500,
            ..obs()
        };
        assert_eq!(d.check(t(400), &caught), None);
        assert_eq!(d.check(t(600), &lag), None, "clock restarted");
        assert_eq!(d.check(t(1_100), &lag), Some(FailureReason::NetByteLag));
    }

    #[test]
    fn reset_clears_history() {
        let mut d = det();
        let lag = NetObservation {
            my_bytes: 500,
            peer_bytes: 100,
            ..obs()
        };
        let _ = d.check(t(0), &lag);
        d.reset();
        assert_eq!(d.check(t(499), &lag), None);
        assert_eq!(d.check(t(999), &lag), Some(FailureReason::NetByteLag));
    }
}
