//! Protocol milestone extraction from the event log.
//!
//! A *milestone* is a timestamped point in a fault-free run where the
//! protocol changes phase: the connection reaching ESTABLISHED (which on
//! the backup doubles as the ISN-match proof), the first data byte
//! reaching the replica application, the hold buffer arming, each
//! heartbeat round, FIN interception and release. The bounded-exhaustive
//! explorer (`sttcp_apps::explore`) anchors its fault-timing lattice to
//! these points instead of sampling timestamps at random, so a bug that
//! only fires in the narrow window *between* two protocol events cannot
//! hide between sampled seeds.
//!
//! Heartbeat rounds are synthesized arithmetically from the configured
//! period rather than read from the log — the log records link
//! transitions, not every healthy round, and the lattice wants anchors
//! *on* the healthy cadence.

use core::fmt;

use simnet::time::{SimDuration, SimTime};

use crate::events::StTcpEvent;

/// What kind of protocol phase boundary a milestone marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MilestoneKind {
    /// The connection reached ESTABLISHED (SYN exchange done). On the
    /// backup this also proves the synchronized ISN matched the tapped
    /// handshake.
    Established,
    /// First client data byte delivered to the replica application.
    FirstData,
    /// The extended receive (hold) buffer was armed.
    HoldArmed,
    /// The n-th heartbeat round (1-based), synthesized at `n × hb_period`.
    HbRound(u32),
    /// A locally generated FIN/RST entered arbitration hold.
    FinHeld,
    /// A held FIN/RST was released.
    FinReleased,
    /// A failure verdict was reached against the peer.
    PeerDeclaredFailed,
    /// STONITH was issued.
    StonithIssued,
    /// A backup completed takeover of the client connections.
    TookOver,
    /// Missed-byte recovery was requested.
    RecoveryRequested,
    /// Missed-byte recovery completed.
    RecoveryCompleted,
    /// Re-integration of a rebooted node started.
    ReintegrationStarted,
    /// Re-integration completed; the pair is fault-tolerant again.
    ReintegrationCompleted,
}

impl MilestoneKind {
    /// A short stable identifier (coverage-report keys, CLI output).
    pub fn key(self) -> &'static str {
        match self {
            MilestoneKind::Established => "established",
            MilestoneKind::FirstData => "first_data",
            MilestoneKind::HoldArmed => "hold_armed",
            MilestoneKind::HbRound(_) => "hb_round",
            MilestoneKind::FinHeld => "fin_held",
            MilestoneKind::FinReleased => "fin_released",
            MilestoneKind::PeerDeclaredFailed => "peer_declared_failed",
            MilestoneKind::StonithIssued => "stonith_issued",
            MilestoneKind::TookOver => "took_over",
            MilestoneKind::RecoveryRequested => "recovery_requested",
            MilestoneKind::RecoveryCompleted => "recovery_completed",
            MilestoneKind::ReintegrationStarted => "reintegration_started",
            MilestoneKind::ReintegrationCompleted => "reintegration_completed",
        }
    }
}

impl fmt::Display for MilestoneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilestoneKind::HbRound(n) => write!(f, "hb_round_{n}"),
            other => write!(f, "{}", other.key()),
        }
    }
}

/// A timestamped protocol phase boundary harvested from a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Milestone {
    /// What phase boundary this is.
    pub kind: MilestoneKind,
    /// When it happened in the fault-free trace.
    pub at: SimTime,
}

/// How many heartbeat rounds to synthesize beyond the last observed
/// event — faults just after the final protocol event (e.g. between the
/// FIN release and the next heartbeat) are exactly the boundary windows
/// the explorer exists to cover.
const HB_ROUNDS_PAST_LAST_EVENT: u64 = 2;

/// Hard cap on synthesized heartbeat rounds, so a long trace cannot blow
/// the lattice up quadratically.
const MAX_HB_ROUNDS: u32 = 16;

/// Extracts the milestone list from the two servers' event logs.
///
/// Events from both logs are merged (the backup's `Established` is the
/// ISN-match proof; the primary's is the accept), deduplicated by
/// `(kind, at)`, and returned sorted by time with a stable kind order
/// breaking ties — the result is a pure function of the logs, so the
/// explorer's lattice is deterministic.
pub fn harvest(
    primary: &[StTcpEvent],
    backup: &[StTcpEvent],
    hb_period: SimDuration,
) -> Vec<Milestone> {
    let mut out: Vec<Milestone> = Vec::new();
    let mut last_event = SimTime::ZERO;
    let any_event = !primary.is_empty() || !backup.is_empty();
    for ev in primary.iter().chain(backup.iter()) {
        let kind = match ev {
            StTcpEvent::ConnEstablished { .. } => Some(MilestoneKind::Established),
            StTcpEvent::FirstDataDelivered { .. } => Some(MilestoneKind::FirstData),
            StTcpEvent::HoldArmed { .. } => Some(MilestoneKind::HoldArmed),
            StTcpEvent::FinHeld { .. } => Some(MilestoneKind::FinHeld),
            StTcpEvent::FinReleased { .. } => Some(MilestoneKind::FinReleased),
            StTcpEvent::PeerDeclaredFailed { .. } => Some(MilestoneKind::PeerDeclaredFailed),
            StTcpEvent::StonithIssued { .. } => Some(MilestoneKind::StonithIssued),
            StTcpEvent::TookOver { .. } => Some(MilestoneKind::TookOver),
            StTcpEvent::RecoveryRequested { .. } => Some(MilestoneKind::RecoveryRequested),
            StTcpEvent::RecoveryCompleted { .. } => Some(MilestoneKind::RecoveryCompleted),
            StTcpEvent::ReintegrationStarted { .. } => Some(MilestoneKind::ReintegrationStarted),
            StTcpEvent::ReintegrationCompleted { .. } => {
                Some(MilestoneKind::ReintegrationCompleted)
            }
            _ => None,
        };
        last_event = last_event.max(ev.at());
        if let Some(kind) = kind {
            out.push(Milestone { kind, at: ev.at() });
        }
    }

    // Healthy heartbeat cadence, spanning a little past the last protocol
    // event so "just after the end" windows exist in the lattice. An empty
    // trace (no run at all) yields no anchors.
    if !any_event {
        return out;
    }
    let period = hb_period.as_millis().max(1);
    let until = last_event.as_millis() + HB_ROUNDS_PAST_LAST_EVENT * period;
    let mut round = 1u32;
    while u64::from(round) * period <= until && round <= MAX_HB_ROUNDS {
        out.push(Milestone {
            kind: MilestoneKind::HbRound(round),
            at: SimTime::from_millis(u64::from(round) * period),
        });
        round += 1;
    }

    out.sort_by_key(|m| (m.at, m.kind));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn harvest_is_sorted_deduped_and_spans_hb_rounds() {
        let primary = vec![
            StTcpEvent::ConnEstablished { conn: 1, at: t(30) },
            StTcpEvent::HoldArmed { conn: 1, at: t(30) },
            StTcpEvent::FirstDataDelivered { conn: 1, at: t(45) },
            StTcpEvent::FinHeld {
                conn: 1,
                at: t(700),
            },
        ];
        let backup = vec![
            StTcpEvent::ConnEstablished { conn: 1, at: t(30) },
            StTcpEvent::FirstDataDelivered { conn: 1, at: t(45) },
        ];
        let ms = harvest(&primary, &backup, SimDuration::from_millis(200));
        // Sorted by time, duplicates collapsed.
        for w in ms.windows(2) {
            assert!(w[0].at <= w[1].at);
            assert_ne!(w[0], w[1]);
        }
        // Only one Established anchor despite both logs reporting it.
        assert_eq!(
            ms.iter()
                .filter(|m| m.kind == MilestoneKind::Established)
                .count(),
            1
        );
        // HB rounds reach past the last event (700ms) by two periods.
        let last_hb = ms
            .iter()
            .filter_map(|m| match m.kind {
                MilestoneKind::HbRound(_) => Some(m.at),
                _ => None,
            })
            .max()
            .unwrap();
        assert!(last_hb >= t(1000), "last hb round at {last_hb}");
    }

    #[test]
    fn harvest_of_empty_logs_still_yields_nothing() {
        let ms = harvest(&[], &[], SimDuration::from_millis(200));
        assert!(ms.is_empty());
    }
}
