//! FIN/RST arbitration — the `MaxDelayFIN` protocol (§4.2.2).
//!
//! When an application crash is cleaned up by the OS, the socket closes
//! and TCP generates a FIN (or RST) — indistinguishable, at the transport
//! layer, from a legitimate close. ST-TCP arbitrates:
//!
//! * **Both servers generate a FIN** → normal closure; send immediately.
//! * **Client already sent its FIN** → our FIN answers it; send
//!   immediately.
//! * **Only this server generates a FIN** → hold it for `MaxDelayFIN`;
//!   during the hold the scenario is identical to a no-cleanup crash and
//!   the lag detector gets its chance. If nothing is detected, assume the
//!   local behaviour is correct and release.
//! * **Only the peer generates a FIN** (primary's view) → wait up to
//!   `MaxDelayFIN` for the lag detector to condemn the backup; if it
//!   never does, declare the backup failed anyway and go
//!   non-fault-tolerant (the paper deliberately never fails over on a
//!   primary-side FIN, since the FIN-less server may be the broken one).
//!
//! The backup's arbiter is passive: its FINs are swallowed by egress
//! suppression regardless, and the primary drives all mismatch verdicts.
//! For the arbitration to resolve crash cases before the deadline, the
//! configuration must keep `app_max_lag_time < max_delay_fin` (the
//! default config does).

use simnet::time::{SimDuration, SimTime};

use crate::config::Role;
use crate::events::FinReleaseReason;

/// An action the server must carry out in response to arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbAction {
    /// Gate the connection's FIN/RST at the egress shim.
    HoldFin,
    /// Open the gate (and force a retransmission so the FIN goes out now).
    ReleaseFin(FinReleaseReason),
    /// The one-sided-FIN deadline expired against the peer: declare it
    /// failed (primary only).
    DeclarePeerFailed,
}

/// Per-connection FIN/RST arbitration state.
#[derive(Debug, Clone)]
pub struct FinArbiter {
    role: Role,
    max_delay: SimDuration,
    local_fin: bool,
    peer_fin: bool,
    client_fin: bool,
    holding: bool,
    /// Deadline for a locally held FIN.
    hold_deadline: Option<SimTime>,
    /// Deadline for a peer-only FIN (primary condemns the backup at
    /// expiry).
    mismatch_deadline: Option<SimTime>,
    resolved: bool,
}

impl FinArbiter {
    /// Creates an arbiter for one connection.
    pub fn new(role: Role, max_delay: SimDuration) -> FinArbiter {
        FinArbiter {
            role,
            max_delay,
            local_fin: false,
            peer_fin: false,
            client_fin: false,
            holding: false,
            hold_deadline: None,
            mismatch_deadline: None,
            resolved: false,
        }
    }

    /// True while a locally generated FIN/RST is being held.
    pub fn is_holding(&self) -> bool {
        self.holding
    }

    /// True while periodic [`FinArbiter::on_check`] calls can still do
    /// something: an unresolved arbiter with an armed deadline. Everything
    /// else only reacts to events, so the server may skip its checks.
    pub fn needs_check(&self) -> bool {
        !self.resolved && (self.hold_deadline.is_some() || self.mismatch_deadline.is_some())
    }

    /// The local application (or its OS cleanup) is about to close/abort
    /// the connection. Returns the gate decision. Call *before* the
    /// close/abort is issued to TCP so the gate is in place first.
    pub fn on_local_close(&mut self, now: SimTime) -> ArbAction {
        self.local_fin = true;
        self.mismatch_deadline = None; // both sides have FINs now
        if self.resolved {
            return ArbAction::ReleaseFin(FinReleaseReason::PeerFailed);
        }
        if self.role == Role::Backup {
            // Egress suppression swallows the FIN regardless; nothing to
            // arbitrate locally. Mark holding so takeover knows to release.
            self.holding = true;
            return ArbAction::HoldFin;
        }
        if self.peer_fin {
            self.resolved = true;
            return ArbAction::ReleaseFin(FinReleaseReason::PeerAlsoFin);
        }
        if self.client_fin {
            self.resolved = true;
            return ArbAction::ReleaseFin(FinReleaseReason::ClientClosedFirst);
        }
        self.holding = true;
        self.hold_deadline = Some(now + self.max_delay);
        ArbAction::HoldFin
    }

    /// The client's FIN arrived. A held local FIN may now go out
    /// immediately (paper: "the primary always immediately sends out a FIN
    /// if it has already received a FIN from the client").
    pub fn note_client_fin(&mut self, _now: SimTime) -> Option<ArbAction> {
        self.client_fin = true;
        if self.holding && self.role == Role::Primary && !self.resolved {
            self.release(FinReleaseReason::ClientClosedFirst)
        } else {
            None
        }
    }

    /// A heartbeat reported the peer's FIN/RST state.
    pub fn on_peer_hb(&mut self, now: SimTime, peer_fin: bool) -> Option<ArbAction> {
        if !peer_fin || self.resolved {
            self.peer_fin = peer_fin || self.peer_fin;
            return None;
        }
        let first_news = !self.peer_fin;
        self.peer_fin = true;
        if self.holding && self.role == Role::Primary {
            return self.release(FinReleaseReason::PeerAlsoFin);
        }
        // Peer-only FIN: the primary arms the mismatch deadline.
        if first_news
            && !self.local_fin
            && self.role == Role::Primary
            && self.mismatch_deadline.is_none()
        {
            self.mismatch_deadline = Some(now + self.max_delay);
        }
        None
    }

    /// Periodic deadline evaluation.
    pub fn on_check(&mut self, now: SimTime) -> Option<ArbAction> {
        if self.resolved {
            return None;
        }
        if let Some(d) = self.hold_deadline {
            if now >= d && self.role == Role::Primary {
                return self.release(FinReleaseReason::DelayExpired);
            }
        }
        if let Some(d) = self.mismatch_deadline {
            if now >= d && self.role == Role::Primary && !self.local_fin {
                self.resolved = true;
                self.mismatch_deadline = None;
                return Some(ArbAction::DeclarePeerFailed);
            }
        }
        None
    }

    /// The peer has been declared failed by some detector; any held FIN
    /// belongs to the surviving, presumed-correct server and goes out.
    pub fn on_peer_failed(&mut self) -> Option<ArbAction> {
        self.mismatch_deadline = None;
        if self.holding && !self.resolved {
            self.release(FinReleaseReason::PeerFailed)
        } else {
            self.resolved = true;
            None
        }
    }

    /// Role promotion at takeover: the backup becomes the (non-FT)
    /// primary; a FIN it was sitting on is now legitimate output.
    pub fn on_takeover(&mut self) -> Option<ArbAction> {
        self.role = Role::Primary;
        self.on_peer_failed()
    }

    fn release(&mut self, reason: FinReleaseReason) -> Option<ArbAction> {
        self.holding = false;
        self.hold_deadline = None;
        self.resolved = true;
        Some(ArbAction::ReleaseFin(reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn arb(role: Role) -> FinArbiter {
        FinArbiter::new(role, SimDuration::from_secs(60))
    }

    #[test]
    fn normal_closure_both_fins_releases_immediately() {
        let mut a = arb(Role::Primary);
        assert_eq!(a.on_peer_hb(t(0), true), None);
        assert_eq!(
            a.on_local_close(t(10)),
            ArbAction::ReleaseFin(FinReleaseReason::PeerAlsoFin)
        );
        assert!(!a.is_holding());
    }

    #[test]
    fn client_closed_first_no_delay() {
        let mut a = arb(Role::Primary);
        assert_eq!(a.note_client_fin(t(0)), None);
        assert_eq!(
            a.on_local_close(t(5)),
            ArbAction::ReleaseFin(FinReleaseReason::ClientClosedFirst)
        );
    }

    #[test]
    fn lone_primary_fin_held_then_released_on_peer_hb() {
        let mut a = arb(Role::Primary);
        assert_eq!(a.on_local_close(t(0)), ArbAction::HoldFin);
        assert!(a.is_holding());
        // Peer's FIN shows up a heartbeat later: normal close after all.
        assert_eq!(
            a.on_peer_hb(t(200), true),
            Some(ArbAction::ReleaseFin(FinReleaseReason::PeerAlsoFin))
        );
        assert!(!a.is_holding());
    }

    #[test]
    fn lone_primary_fin_released_at_deadline() {
        let mut a = arb(Role::Primary);
        let _ = a.on_local_close(t(0));
        assert_eq!(a.on_check(t(59_999)), None);
        assert_eq!(
            a.on_check(t(60_000)),
            Some(ArbAction::ReleaseFin(FinReleaseReason::DelayExpired))
        );
        // Only once.
        assert_eq!(a.on_check(t(70_000)), None);
    }

    #[test]
    fn lone_primary_fin_released_when_client_fin_arrives_later() {
        let mut a = arb(Role::Primary);
        let _ = a.on_local_close(t(0));
        assert_eq!(
            a.note_client_fin(t(100)),
            Some(ArbAction::ReleaseFin(FinReleaseReason::ClientClosedFirst))
        );
    }

    #[test]
    fn peer_only_fin_condemns_backup_at_deadline() {
        let mut a = arb(Role::Primary);
        assert_eq!(a.on_peer_hb(t(0), true), None);
        assert_eq!(a.on_check(t(59_999)), None);
        assert_eq!(a.on_check(t(60_000)), Some(ArbAction::DeclarePeerFailed));
        assert_eq!(a.on_check(t(61_000)), None, "verdict issued once");
    }

    #[test]
    fn peer_only_fin_then_local_close_cancels_mismatch() {
        let mut a = arb(Role::Primary);
        let _ = a.on_peer_hb(t(0), true);
        assert_eq!(
            a.on_local_close(t(100)),
            ArbAction::ReleaseFin(FinReleaseReason::PeerAlsoFin)
        );
        assert_eq!(a.on_check(t(100_000)), None);
    }

    #[test]
    fn held_fin_released_when_peer_declared_failed() {
        let mut a = arb(Role::Primary);
        let _ = a.on_local_close(t(0));
        assert_eq!(
            a.on_peer_failed(),
            Some(ArbAction::ReleaseFin(FinReleaseReason::PeerFailed))
        );
    }

    #[test]
    fn backup_fin_is_held_passively() {
        let mut a = arb(Role::Backup);
        assert_eq!(a.on_local_close(t(0)), ArbAction::HoldFin);
        // No deadline on the backup: nothing happens at any time.
        assert_eq!(a.on_check(t(1_000_000)), None);
        // Takeover promotes and releases.
        assert_eq!(
            a.on_takeover(),
            Some(ArbAction::ReleaseFin(FinReleaseReason::PeerFailed))
        );
    }

    #[test]
    fn backup_without_fin_takeover_is_quiet() {
        let mut a = arb(Role::Backup);
        assert_eq!(a.on_takeover(), None);
        assert_eq!(a.on_check(t(1_000_000)), None);
    }

    #[test]
    fn repeated_peer_hb_fin_does_not_rearm_mismatch() {
        let mut a = arb(Role::Primary);
        let _ = a.on_peer_hb(t(0), true);
        let _ = a.on_peer_hb(t(10_000), true);
        // Deadline anchored at first news (t=0), so fires at 60s not 70s.
        assert_eq!(a.on_check(t(60_000)), Some(ArbAction::DeclarePeerFailed));
    }

    #[test]
    fn close_after_resolution_passes_through() {
        let mut a = arb(Role::Primary);
        let _ = a.on_peer_hb(t(0), true);
        let _ = a.on_check(t(60_000)); // peer condemned
        assert_eq!(
            a.on_local_close(t(61_000)),
            ArbAction::ReleaseFin(FinReleaseReason::PeerFailed)
        );
    }
}
