//! The ST-TCP server node: ties the TCP stack, the replica application,
//! the heartbeat engine, every failure detector, and recovery together.
//!
//! One [`StTcpServer`] instance runs on each of the two server hosts; the
//! [`crate::config::Role`] decides its behaviour:
//!
//! * The **primary** serves clients normally, holds received client bytes
//!   in the extended receive buffer until the backup confirms them, sends
//!   heartbeats on both links, arbitrates FINs, answers missed-byte fetch
//!   requests, and — if the backup fails — STONITHs it and continues
//!   non-fault-tolerant.
//! * The **backup** accepts the same (tapped) client segments with the
//!   same deterministic ISN, runs the replica application, suppresses all
//!   egress, tracks the primary through heartbeats, fetches bytes it
//!   missed, and — if the primary fails — powers it down and takes over
//!   the client connections in place.

use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use simnet::flight::{FlightKind, SpanId};
use simnet::frame::EthernetFrame;
use simnet::ip::{IpProto, Ipv4Packet};
use simnet::iplayer::IpInterface;
use simnet::node::{NicId, Node, NodeCtx, NodeId, SerialPortId, TimerId, TimerToken};
use simnet::profile::Component;
use simnet::time::{SimDuration, SimTime};

use simtcp::conn::{ConnStats, TcpConfig, TcpConn, TcpSnapshot, TcpState};
use simtcp::endpoint::{
    EgressMode, EndpointConfig, FinGate, IsnPolicy, ListenConfig, RstPolicy, TcpEndpoint,
};
use simtcp::segment::peek_segment;
use simtcp::seq::SeqNum;
use simtcp::socket::{FourTuple, SocketEvent, SocketId};

use crate::app::{AppAction, AppFactory, Application};
use crate::applag::AppLagDetector;
use crate::config::{Role, StTcpConfig};
use crate::events::{FailureReason, HbLink, StTcpEvent};
use crate::finarb::{ArbAction, FinArbiter};
use crate::heartbeat::{
    conn_key, decode_any, unwrap_u32_near, AnyHb, ConnHb, HbFrame, HbFrameKind, HbPayload,
    PingReport, HB_CONN_LEN,
};
use crate::linkmon::LinkMonitor;
use crate::metrics::ServerMetrics;
use crate::netdetect::{NetFailureDetector, NetObservation};
use crate::pool::{FenceRound, PeerConn, PoolPeer, PoolState};
use crate::recover::{ConnSnapshotMsg, CtrlMsg, MAX_FETCH_DATA};

/// The IP protocol number carrying the server-to-server recovery channel.
pub const CTRL_PROTO: IpProto = IpProto::Other(254);

/// The wire role byte both heartbeat endpoints derive span ids from.
fn role_byte(role: Role) -> u8 {
    match role {
        Role::Primary => 0,
        Role::Backup => 1,
    }
}

/// Derives a boot-incarnation epoch for the delta-heartbeat protocol from
/// the boot instant: deterministic (replay-stable), distinct across
/// reboots within one run, and never 0 — a zero epoch always means "none
/// seen yet".
fn epoch_from(now: SimTime) -> u32 {
    let n = now.as_micros();
    ((n ^ (n >> 32)) as u32) | 1
}

/// Wrapping seqno comparison: true when `a` is strictly newer than `b`.
fn seq_newer(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) as i32 > 0
}

/// Splits one link's heartbeat round into wire frames. With `batch == 0`
/// (or a round that fits), the whole record list rides a single frame —
/// bit-for-bit the single-frame v2 encoding. Otherwise the records are
/// chunked into `⌈n/chunk⌉` parts sharing one seqno (the v3 batch
/// envelope); the ping report rides part 0 only, the ack vector repeats
/// on every part so loss of any one part cannot strand acks. Chunk size
/// is clamped so no part overflows the u16 `conn_count` field — a round
/// beyond 65 535 records splits even when batching is "off".
#[allow(clippy::too_many_arguments)]
fn build_link_frames(
    kind: HbFrameKind,
    epoch: u32,
    link: u8,
    ack_epoch: u32,
    acks: &[u32],
    seq: u32,
    role: Role,
    rank: u8,
    ping: Option<PingReport>,
    conns: Vec<ConnHb>,
    batch: usize,
) -> Vec<HbFrame> {
    let cap = u16::MAX as usize;
    let mut chunk = if batch == 0 { cap } else { batch.min(cap) };
    chunk = chunk.max(conns.len().div_ceil(cap)).max(1);
    let parts = conns.len().div_ceil(chunk).max(1);
    let mut out = Vec::with_capacity(parts);
    let mut iter = conns.into_iter();
    for part in 0..parts {
        let part_conns: Vec<ConnHb> = iter.by_ref().take(chunk).collect();
        out.push(HbFrame {
            kind,
            epoch,
            link,
            ack_epoch,
            acks: acks.to_vec(),
            part: part as u16,
            parts: parts as u16,
            hb: HbPayload {
                seqno: seq,
                role,
                rank,
                conns: part_conns,
                ping: if part == 0 { ping } else { None },
            },
        });
    }
    out
}

/// The stable numeric code a verdict's [`FailureReason`] gets in flight
/// events (the index into [`FailureReason::ALL`]).
pub fn reason_code(reason: FailureReason) -> u32 {
    FailureReason::ALL
        .iter()
        .position(|&r| r == reason)
        .unwrap() as u32
}

const TOKEN_HB: TimerToken = TimerToken(1);
const TOKEN_CHECK: TimerToken = TimerToken(2);
const TOKEN_TCP: TimerToken = TimerToken(3);
const TOKEN_APP_TICK: TimerToken = TimerToken(4);
const TOKEN_PING: TimerToken = TimerToken(5);
const TOKEN_TAKEOVER: TimerToken = TimerToken(6);

/// Static wiring for one ST-TCP server instance.
#[derive(Debug, Clone)]
pub struct ServerSetup {
    /// Initial role.
    pub role: Role,
    /// ST-TCP tunables.
    pub sttcp: StTcpConfig,
    /// Base TCP tuning (the primary's accepted connections additionally
    /// get the extended receive buffer).
    pub tcp: TcpConfig,
    /// The shared service address clients connect to (an alias on both
    /// servers).
    pub service_ip: Ipv4Addr,
    /// The service port.
    pub service_port: u16,
    /// This server's own address (heartbeat + recovery channel).
    pub private_ip: Ipv4Addr,
    /// The peer server's own address.
    pub peer_private_ip: Ipv4Addr,
    /// The peer's node id, for STONITH.
    pub peer_node: NodeId,
    /// The gateway pinged during IP-heartbeat outages (the client host in
    /// the paper's setup).
    pub gateway_ip: Ipv4Addr,
    /// Shared ISN salt — must match on both servers.
    pub isn_salt: u64,
    /// Seed for this server's private randomness.
    pub seed: u64,
    /// This server's static pool rank (0 = initially active). Unused in
    /// pair mode.
    pub rank: u8,
    /// The other pool members. Empty means classic two-server pair mode;
    /// non-empty switches the server into N-replica pool mode.
    pub pool: Vec<PoolPeer>,
}

/// How an injected byzantine heartbeat lies (testing): the sender's
/// payloads remain CRC-valid on the wire but are semantically corrupt,
/// so only the receiver's sanity check can stop them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByzantineHbMode {
    /// Re-send the same seqno forever. Receivers must treat the frozen
    /// payload as stale — counting it as liveness is fine, re-applying
    /// its counters is not.
    Freeze,
    /// Advance the seqno but regress the per-connection cumulative
    /// counters to impossible values. Receivers must reject the whole
    /// payload (quarantine) rather than mis-verdict a healthy peer.
    Regress,
}

/// How an application crash is injected (Demo 4's two scenarios, plus the
/// RST variant of OS cleanup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppCrashMode {
    /// The application stops reading and writing but the socket stays
    /// open; no FIN is generated (§4.2.1).
    SilentNoCleanup,
    /// The OS cleans up and closes the socket: a FIN is generated
    /// (§4.2.2).
    CleanupFin,
    /// The OS cleanup aborts the socket: an RST is generated.
    CleanupRst,
}

/// Per-connection control state.
struct ConnCtl {
    key: u32,
    app: Box<dyn Application>,
    app_alive: bool,
    applag: AppLagDetector,
    finarb: FinArbiter,
    pending_out: Vec<Bytes>,
    last_fetch_at: Option<SimTime>,
    recovering: bool,
    closed: bool,
    /// Post-takeover: when a persistent receive hole was first seen.
    hole_since: Option<SimTime>,
    /// A local close/abort has already gone through arbitration.
    close_issued: bool,
    /// Last time the (live) application showed a sign of life — any
    /// callback into it returning. Feeds the optional watchdog.
    last_sign_of_life: SimTime,
    /// The first client data byte has been delivered to the application
    /// (milestone bookkeeping — emitted once per connection).
    saw_data: bool,
}

/// Re-integration join progress on a rebooted server (the *joiner* side).
///
/// The session nonce scopes every snapshot to one boot of the joiner, so
/// stale snapshots from an earlier join attempt are ignored. The join is
/// complete once all `expected` connections announced by `JoinDone` are
/// installed *and* the local tap has converged with the active peer's
/// heartbeat positions.
#[derive(Debug)]
struct JoinState {
    session: u32,
    /// Connection count from the active peer's `JoinDone`; `None` until it
    /// arrives.
    expected: Option<u32>,
    /// Connection keys whose snapshots were installed (or found already
    /// live via the tap).
    installed: BTreeSet<u32>,
}

/// Gateway-ping campaign state.
#[derive(Debug, Clone, Copy, Default)]
struct PingCampaign {
    active: bool,
    id: u16,
    seq: u16,
    awaiting: Option<u16>,
    consecutive_failures: u32,
    attempts: u32,
}

impl PingCampaign {
    fn report(&self) -> PingReport {
        PingReport {
            consecutive_failures: self.consecutive_failures,
            attempts: self.attempts,
        }
    }
}

/// Last-sent heartbeat record for one connection (delta mode): the value
/// the peer will converge on, and the seqno of the frame that first
/// carried it. The connection rides every frame until the peer's
/// cumulative ack covers `changed_at`.
#[derive(Debug, Clone, Copy)]
struct HbCacheEntry {
    rec: ConnHb,
    changed_at: u32,
}

/// Per-link receive state for batched (v3) heartbeat rounds: which round
/// is open and which part must arrive next. Parts of one round share a
/// seqno and must arrive in order on their link (serial links and the
/// simulated LAN both preserve per-link order); the link's cumulative ack
/// advances only when the final part lands, so a lost part means no ack
/// and the records ride again next round.
#[derive(Debug, Clone, Copy, Default)]
struct RxBatch {
    seqno: u32,
    parts: u16,
    next: u16,
}

/// The ST-TCP server node. See the [module docs](self).
pub struct StTcpServer {
    setup: ServerSetup,
    iface: IpInterface,
    serial_port: SerialPortId,
    /// Additional pair-mode serial heartbeat links. The shard map assigns
    /// connection `key` to serial link `key % n` where link 0 is
    /// `serial_port` and link `1+i` is `extra_serial_ports[i]`.
    extra_serial_ports: Vec<SerialPortId>,
    /// Per-serial-link monitors (index 0 = `serial_port`). `serial_mon`
    /// stays the aggregate any-serial-link view the detector matrix
    /// consumes, so N=1 behavior is bit-for-bit unchanged.
    serial_link_mons: Vec<LinkMonitor>,

    // ----- delta heartbeat (v2 wire format) state; hb_delta only -----
    /// This boot incarnation; acks from a previous incarnation are void.
    hb_epoch: u32,
    /// Last record sent per connection with the seqno it changed at.
    hb_cache: BTreeMap<u32, HbCacheEntry>,
    /// Peer's cumulative acks of *my* frames, per link (0 = IP).
    peer_hb_acks: Vec<u32>,
    /// My epoch the peer's acks refer to; full-state frames are sent
    /// until this matches `hb_epoch`.
    peer_ack_epoch: u32,
    /// Highest seqno applied from the peer, per link (0 = IP) — echoed
    /// back as acks, and the per-link staleness filter.
    rx_link_seq: Vec<u32>,
    /// In-progress batched (v3) round per link: part-ordering state.
    rx_link_batch: Vec<RxBatch>,
    /// The peer epoch `rx_link_seq` refers to (0 = none seen yet).
    rx_peer_epoch: u32,

    tcp: TcpEndpoint,
    app_factory: Box<dyn AppFactory>,
    app_crashed: bool,

    role: Role,
    ft_mode: bool,
    peer_alive: bool,

    conns: BTreeMap<SocketId, ConnCtl>,
    by_key: BTreeMap<u32, SocketId>,
    peer_conns: BTreeMap<u32, PeerConn>,
    /// Connections with application output blocked on a full send buffer
    /// — the only ones the flush loops must revisit.
    out_blocked: BTreeSet<SocketId>,
    /// Connections whose application currently wants `on_tick` callbacks
    /// (see [`Application::wants_tick`]); the app-tick timer visits only
    /// these unless the watchdog needs the full sign-of-life walk.
    tick_socks: BTreeSet<SocketId>,
    /// Connections the per-connection detector walk must visit: recent
    /// local/peer activity, or an armed FIN-arbitration deadline or lag
    /// tracker that must keep aging. Everything else is provably inert
    /// for the detectors and is skipped.
    check_socks: BTreeSet<SocketId>,
    /// Latched when any peer heartbeat record reported `app_suspected`
    /// — replaces an every-check scan of `peer_conns`.
    peer_app_suspected: bool,

    ip_mon: LinkMonitor,
    serial_mon: LinkMonitor,
    ip_was_alive: bool,
    serial_was_alive: bool,

    net_detect: NetFailureDetector,
    ping: PingCampaign,
    peer_ping: Option<PingReport>,

    hb_seq: u32,
    /// Pair mode: highest heartbeat seqno accepted from the peer
    /// (staleness filter; pool mode tracks this per member).
    peer_last_seqno: Option<u32>,
    /// Pair mode: when `peer_last_seqno` last advanced. Stale frames
    /// prove liveness only within one heartbeat timeout of this point —
    /// a seqno frozen for longer is a replayed or insane stream and
    /// must starve the link monitors instead of refreshing them.
    peer_seqno_advanced_at: SimTime,
    /// Pair mode: a byzantine heartbeat was already logged (sticky).
    byzantine_reported: bool,
    /// Span of the last heartbeat this server received — the evidence a
    /// later failure verdict is causally parented to.
    last_hb_rx_span: SpanId,
    /// Span of this server's failure verdict; the STONITH and takeover
    /// flight events join it so the whole failover reads as one chain.
    verdict_span: SpanId,
    /// Byzantine heartbeat fault injection, if armed (testing).
    byz_mode: Option<ByzantineHbMode>,
    /// N-replica pool state (`None` in pair mode).
    pool: Option<PoolState>,
    /// Reusable `ConnHb` buffer for heartbeat assembly: taken by
    /// `build_heartbeat`, reclaimed (with its capacity) after encoding,
    /// so the per-period heartbeat allocates no per-connection vector.
    hb_scratch: Vec<ConnHb>,
    took_over: bool,
    /// Re-integration: `Some` while this (rebooted) server is joining the
    /// active peer's live connections.
    join: Option<JoinState>,
    /// Re-integration: `Some(session)` while this (active) server is
    /// feeding snapshots to a joining peer.
    serving_join: Option<u32>,
    tcp_timer: Option<(TimerId, SimTime)>,
    events: Vec<StTcpEvent>,
    metrics: ServerMetrics,
    powered_off: bool,
    cold: bool,
    started_at: SimTime,
}

impl std::fmt::Debug for StTcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StTcpServer")
            .field("role", &self.role)
            .field("ft_mode", &self.ft_mode)
            .field("conns", &self.conns.len())
            .finish_non_exhaustive()
    }
}

impl StTcpServer {
    /// Creates a server. `iface` must already carry the service-IP alias
    /// and the static ARP entries for the client, the peer, and the
    /// gateway; `serial_port` is the null-modem port to the peer (settable
    /// later via [`StTcpServer::set_serial_port`]).
    pub fn new(
        setup: ServerSetup,
        iface: IpInterface,
        app_factory: Box<dyn AppFactory>,
    ) -> StTcpServer {
        let hb_timeout = setup.sttcp.hb_timeout();
        let tcp_cfg = EndpointConfig {
            tcp: setup.tcp.clone(),
            isn: IsnPolicy::Deterministic {
                salt: setup.isn_salt,
            },
            // The backup must never answer stray segments; the primary
            // behaves like a normal host.
            rst_policy: match setup.role {
                Role::Primary => RstPolicy::Send,
                Role::Backup => RstPolicy::Silent,
            },
            seed: setup.seed,
        };
        let role = setup.role;
        let net_detect = NetFailureDetector::new(
            setup.sttcp.net_lag_bytes,
            setup.sttcp.net_lag_time,
            setup.sttcp.effective_lag_confirm(),
            setup.sttcp.ping_fail_threshold,
        );
        StTcpServer {
            ping: PingCampaign {
                id: (setup.seed & 0xffff) as u16,
                ..Default::default()
            },
            tcp: TcpEndpoint::new(tcp_cfg),
            iface,
            serial_port: SerialPortId(0),
            extra_serial_ports: Vec::new(),
            serial_link_mons: Vec::new(),
            hb_epoch: 1,
            hb_cache: BTreeMap::new(),
            peer_hb_acks: Vec::new(),
            peer_ack_epoch: 0,
            rx_link_seq: Vec::new(),
            rx_link_batch: Vec::new(),
            rx_peer_epoch: 0,
            app_factory,
            app_crashed: false,
            role,
            ft_mode: true,
            peer_alive: true,
            conns: BTreeMap::new(),
            by_key: BTreeMap::new(),
            peer_conns: BTreeMap::new(),
            out_blocked: BTreeSet::new(),
            tick_socks: BTreeSet::new(),
            check_socks: BTreeSet::new(),
            peer_app_suspected: false,
            ip_mon: LinkMonitor::new(hb_timeout, SimTime::ZERO),
            serial_mon: LinkMonitor::new(hb_timeout, SimTime::ZERO),
            ip_was_alive: true,
            serial_was_alive: true,
            net_detect,
            peer_ping: None,
            hb_seq: 0,
            peer_last_seqno: None,
            peer_seqno_advanced_at: SimTime::ZERO,
            byzantine_reported: false,
            last_hb_rx_span: SpanId::NONE,
            verdict_span: SpanId::NONE,
            byz_mode: None,
            pool: (!setup.pool.is_empty())
                .then(|| PoolState::new(setup.rank, &setup.pool, hb_timeout, SimTime::ZERO)),
            hb_scratch: Vec::new(),
            took_over: false,
            join: None,
            serving_join: None,
            tcp_timer: None,
            events: Vec::new(),
            metrics: ServerMetrics::new(),
            powered_off: false,
            cold: false,
            started_at: SimTime::ZERO,
            setup,
        }
    }

    /// Sets the serial port wired to the peer (assigned by the topology
    /// builder after node construction).
    pub fn set_serial_port(&mut self, port: SerialPortId) {
        self.serial_port = port;
    }

    /// Adds an extra pair-mode serial heartbeat link (conn→link sharding
    /// for beyond-one-link connection counts). Shard `key % n` maps to
    /// link `serial_port` for shard 0 and `extra_serial_ports[s-1]`
    /// otherwise.
    pub fn add_serial_link(&mut self, port: SerialPortId) {
        self.extra_serial_ports.push(port);
    }

    /// Number of heartbeat links to the pair peer: IP plus every serial
    /// link.
    fn hb_nlinks(&self) -> usize {
        2 + self.extra_serial_ports.len()
    }

    /// The serial shard (0-based serial-link index) a connection key maps
    /// to.
    fn shard_of(&self, key: u32) -> usize {
        key as usize % (1 + self.extra_serial_ports.len())
    }

    /// Adds a static ARP entry (topology builders registering additional
    /// clients after construction).
    pub fn add_arp(&mut self, addr: Ipv4Addr, mac: simnet::mac::MacAddr) {
        self.iface.add_arp(addr, mac);
    }

    /// Wires local serial port `port` to pool member `ip` (topology
    /// builders, after connecting the null-modem pair). Pool mode only.
    pub fn add_pool_serial(&mut self, port: SerialPortId, ip: Ipv4Addr) {
        if let Some(pool) = &mut self.pool {
            pool.serial_by_port.insert(port, ip);
            if let Some(m) = pool.members.get_mut(&ip) {
                m.serial_port = Some(port);
            }
        }
    }

    /// True when the optional watchdog suspects the local replica on this
    /// connection: no sign of life for `watchdog_timeout`, with the
    /// connection still nominally open.
    fn watchdog_suspects(&self, now: SimTime, sock: SocketId) -> bool {
        let Some(timeout) = self.setup.sttcp.watchdog_timeout else {
            return false;
        };
        let Some(ctl) = self.conns.get(&sock) else {
            return false;
        };
        !ctl.closed && !ctl.close_issued && now.saturating_since(ctl.last_sign_of_life) >= timeout
    }

    fn touch_sign_of_life(&mut self, now: SimTime, sock: SocketId) {
        if let Some(ctl) = self.conns.get_mut(&sock) {
            if ctl.app_alive {
                ctl.last_sign_of_life = now;
            }
        }
    }

    // ----- public introspection -------------------------------------------

    /// The server's current role (a backup becomes `Primary` at takeover).
    pub fn role(&self) -> Role {
        self.role
    }

    /// True while the server still believes its peer is alive and is
    /// operating fault-tolerant.
    pub fn ft_mode(&self) -> bool {
        self.ft_mode
    }

    /// The protocol event log.
    pub fn events(&self) -> &[StTcpEvent] {
        &self.events
    }

    /// Runtime metrics (heartbeat inter-arrivals, hold high-water,
    /// fetch/replay bytes, verdict counters, TCP samples).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Aggregate TCP transfer counters across this server's connections
    /// (retransmits, RTO firings, segment counts).
    pub fn tcp_stats(&self) -> ConnStats {
        let mut sum = ConnStats::default();
        for &sock in self.by_key.values() {
            if let Some(c) = self.tcp.conn(sock) {
                let s = c.stats();
                sum.segs_out += s.segs_out;
                sum.segs_in += s.segs_in;
                sum.bytes_sent += s.bytes_sent;
                sum.bytes_retransmitted += s.bytes_retransmitted;
                sum.rto_fires += s.rto_fires;
                sum.fast_retransmits += s.fast_retransmits;
            }
        }
        sum
    }

    /// When this server took over, if it did.
    pub fn took_over_at(&self) -> Option<SimTime> {
        self.events.iter().find_map(|e| match e {
            StTcpEvent::TookOver { at } => Some(*at),
            _ => None,
        })
    }

    /// When this server completed a re-integration (as joiner or as the
    /// active side), if it did.
    pub fn reintegrated_at(&self) -> Option<SimTime> {
        self.events.iter().find_map(|e| match e {
            StTcpEvent::ReintegrationCompleted { at } => Some(*at),
            _ => None,
        })
    }

    /// The underlying TCP endpoint (tests and harnesses).
    pub fn endpoint(&self) -> &TcpEndpoint {
        &self.tcp
    }

    /// Application state digest for a connection key (replica-lockstep
    /// assertions).
    pub fn app_digest(&self, key: u32) -> Option<u64> {
        let sock = self.by_key.get(&key)?;
        self.conns.get(sock).map(|c| c.app.state_digest())
    }

    /// Connection keys currently known.
    pub fn conn_keys(&self) -> Vec<u32> {
        self.by_key.keys().copied().collect()
    }

    /// True if the node observed a power-off (and, with re-integration
    /// enabled, has not since warm-rebooted back into the pair).
    pub fn was_powered_off(&self) -> bool {
        self.powered_off
    }

    /// True after a reboot: all in-memory protocol state was lost and the
    /// server is a passive cold standby (never transmits, ignores all
    /// input) until an operator re-pairs it.
    pub fn cold_standby(&self) -> bool {
        self.cold
    }

    /// True when this server could currently emit client-visible traffic:
    /// powered on, not a cold standby, and acting as primary (the original
    /// primary, or a backup after takeover). At most one server in a pair
    /// may ever be active at once — the chaos invariant checker enforces
    /// this.
    pub fn is_active(&self) -> bool {
        !self.powered_off && !self.cold && self.role == Role::Primary
    }

    /// This server's current pool rank (reassigned on rejoin), or its
    /// static configured rank in pair mode.
    pub fn pool_rank(&self) -> u8 {
        self.pool.as_ref().map_or(self.setup.rank, |p| p.my_rank)
    }

    /// Most recent pool-strength sample: this server plus every live
    /// non-fenced member. `None` in pair mode.
    pub fn pool_strength(&self) -> Option<u64> {
        self.pool.as_ref().map(|_| self.metrics.pool_strength())
    }

    // ----- failure injection ------------------------------------------------

    /// Crashes the replica application on this server (Demo 4). Applies to
    /// every current connection and to all future ones.
    ///
    /// State changes are immediate; any resulting FIN/RST leaves with the
    /// next timer-driven flush (bounded by `app_tick`).
    pub fn inject_app_crash(&mut self, now: SimTime, mode: AppCrashMode) {
        self.app_crashed = true;
        let socks: Vec<SocketId> = self.conns.keys().copied().collect();
        for sock in socks {
            let Some(ctl) = self.conns.get_mut(&sock) else {
                continue;
            };
            if ctl.closed {
                continue;
            }
            ctl.app_alive = false;
            match mode {
                AppCrashMode::SilentNoCleanup => {}
                AppCrashMode::CleanupFin => {
                    ctl.close_issued = true;
                    let action = ctl.finarb.on_local_close(now);
                    let key = ctl.key;
                    self.apply_gate_action(now, sock, key, action);
                    self.tcp.close(now, sock);
                }
                AppCrashMode::CleanupRst => {
                    ctl.close_issued = true;
                    let action = ctl.finarb.on_local_close(now);
                    let key = ctl.key;
                    self.apply_gate_action(now, sock, key, action);
                    self.tcp.abort(now, sock);
                }
            }
        }
    }

    /// Arms byzantine heartbeat corruption on this server: every future
    /// heartbeat it sends lies per `mode` while remaining CRC-valid.
    /// Receivers must quarantine the stream, not mis-verdict.
    pub fn inject_byzantine_hb(&mut self, mode: ByzantineHbMode) {
        self.byz_mode = Some(mode);
    }

    // ----- internal: TCP event handling ------------------------------------

    /// Drains endpoint events, returning whether anything happened.
    fn drain_tcp_events(&mut self, now: SimTime) -> bool {
        let mut any = false;
        while let Some((sock, ev)) = self.tcp.poll_event() {
            any = true;
            match ev {
                SocketEvent::Accepted => self.on_accepted(now, sock),
                SocketEvent::Connected => {}
                SocketEvent::DataReadable => self.on_readable(now, sock),
                SocketEvent::PeerFin => self.on_client_fin(now, sock),
                SocketEvent::Reset | SocketEvent::Closed => {
                    if let Some(ctl) = self.conns.get_mut(&sock) {
                        ctl.closed = true;
                    }
                }
            }
        }
        any
    }

    fn on_accepted(&mut self, now: SimTime, sock: SocketId) {
        let Some(conn) = self.tcp.conn(sock) else {
            return;
        };
        let key = conn_key(conn.tuple());
        let mut app = self.app_factory.create();
        let app_alive = !self.app_crashed;
        let open_actions = if app_alive { app.on_open() } else { Vec::new() };
        self.by_key.insert(key, sock);
        self.conns.insert(
            sock,
            ConnCtl {
                key,
                app,
                app_alive,
                applag: AppLagDetector::new(
                    self.setup.sttcp.app_max_lag_bytes,
                    self.setup.sttcp.app_max_lag_time,
                    self.setup.sttcp.effective_lag_confirm(),
                ),
                finarb: FinArbiter::new(self.role, self.setup.sttcp.max_delay_fin),
                pending_out: Vec::new(),
                last_fetch_at: None,
                recovering: false,
                closed: false,
                close_issued: false,
                hole_since: None,
                last_sign_of_life: now,
                saw_data: false,
            },
        );
        self.events
            .push(StTcpEvent::ConnEstablished { conn: key, at: now });
        // The accept endpoint arms the extended receive buffer on every
        // connection it accepts while this server is the active member
        // (`hold_buf` is set at start-up for a primary and again at
        // takeover); mirror that condition into the event log.
        if self.role == Role::Primary {
            self.events
                .push(StTcpEvent::HoldArmed { conn: key, at: now });
        }
        self.apply_app_actions(now, sock, open_actions);
    }

    fn on_readable(&mut self, now: SimTime, sock: SocketId) {
        loop {
            let alive = self.conns.get(&sock).map(|c| c.app_alive).unwrap_or(false);
            if !alive {
                // A crashed application never reads: bytes pile up in the
                // TCP receive buffer exactly as in §4.2.1.
                return;
            }
            let data = self.tcp.recv(sock, 64 * 1024);
            if data.is_empty() {
                return;
            }
            let actions = match self.conns.get_mut(&sock) {
                Some(ctl) => {
                    if !ctl.saw_data {
                        ctl.saw_data = true;
                        self.events.push(StTcpEvent::FirstDataDelivered {
                            conn: ctl.key,
                            at: now,
                        });
                    }
                    ctl.app.on_data(&data)
                }
                None => return,
            };
            self.touch_sign_of_life(now, sock);
            self.apply_app_actions(now, sock, actions);
        }
    }

    fn on_client_fin(&mut self, now: SimTime, sock: SocketId) {
        self.check_socks.insert(sock);
        let Some(ctl) = self.conns.get_mut(&sock) else {
            return;
        };
        let key = ctl.key;
        let arb = ctl.finarb.note_client_fin(now);
        let alive = ctl.app_alive;
        if let Some(action) = arb {
            self.apply_gate_action(now, sock, key, action);
        }
        if alive {
            let actions = match self.conns.get_mut(&sock) {
                Some(c) => c.app.on_peer_close(),
                None => return,
            };
            self.apply_app_actions(now, sock, actions);
        }
    }

    fn apply_app_actions(&mut self, now: SimTime, sock: SocketId, actions: Vec<AppAction>) {
        for action in actions {
            match action {
                AppAction::Write(bytes) => {
                    if let Some(ctl) = self.conns.get_mut(&sock) {
                        ctl.pending_out.push(bytes);
                    }
                }
                AppAction::Close => {
                    let arb = match self.conns.get_mut(&sock) {
                        Some(ctl) if !ctl.close_issued => {
                            ctl.close_issued = true;
                            Some(ctl.finarb.on_local_close(now))
                        }
                        Some(_) => None,
                        None => continue,
                    };
                    if let Some(arb) = arb {
                        let key = self.conns.get(&sock).map(|c| c.key).unwrap_or(0);
                        self.apply_gate_action(now, sock, key, arb);
                    }
                    self.flush_pending(now, sock);
                    self.tcp.close(now, sock);
                }
                AppAction::Abort => {
                    let arb = match self.conns.get_mut(&sock) {
                        Some(ctl) if !ctl.close_issued => {
                            ctl.close_issued = true;
                            Some(ctl.finarb.on_local_close(now))
                        }
                        Some(_) => None,
                        None => continue,
                    };
                    if let Some(arb) = arb {
                        let key = self.conns.get(&sock).map(|c| c.key).unwrap_or(0);
                        self.apply_gate_action(now, sock, key, arb);
                    }
                    self.tcp.abort(now, sock);
                }
            }
        }
        self.flush_pending(now, sock);
        // Any callback into the application may change its detector-visible
        // state or its appetite for ticks.
        self.check_socks.insert(sock);
        self.refresh_tick(sock);
    }

    /// Re-evaluates whether `sock`'s application needs periodic `on_tick`
    /// callbacks. Called after every callback into the app, since tick
    /// appetite changes with application state.
    fn refresh_tick(&mut self, sock: SocketId) {
        let wants = self
            .conns
            .get(&sock)
            .is_some_and(|c| c.app_alive && !c.closed && c.app.wants_tick());
        if wants {
            self.tick_socks.insert(sock);
        } else {
            self.tick_socks.remove(&sock);
        }
    }

    fn flush_pending(&mut self, now: SimTime, sock: SocketId) {
        let mut wrote = false;
        while let Some(front) = self
            .conns
            .get_mut(&sock)
            .and_then(|c| c.pending_out.first().cloned())
        {
            let n = self.tcp.send(now, sock, &front);
            let Some(ctl) = self.conns.get_mut(&sock) else {
                break;
            };
            if n == 0 {
                break; // send buffer full; retry on a later tick
            }
            wrote = true;
            if n == front.len() {
                ctl.pending_out.remove(0);
            } else {
                ctl.pending_out[0] = front.slice(n..);
                break;
            }
        }
        // Writing advances the app position the lag detector compares.
        if wrote {
            self.check_socks.insert(sock);
        }
        // Track blocked output so flush loops revisit only these.
        if self
            .conns
            .get(&sock)
            .is_some_and(|c| !c.pending_out.is_empty())
        {
            self.out_blocked.insert(sock);
        } else {
            self.out_blocked.remove(&sock);
        }
    }

    /// Applies a FIN-arbitration gate action (but not `DeclarePeerFailed`,
    /// which the caller must route through the verdict path).
    fn apply_gate_action(&mut self, now: SimTime, sock: SocketId, key: u32, action: ArbAction) {
        match action {
            ArbAction::HoldFin => {
                self.tcp.set_fin_gate(sock, FinGate::Hold);
                self.events.push(StTcpEvent::FinHeld { conn: key, at: now });
            }
            ArbAction::ReleaseFin(reason) => {
                self.tcp.release_fin(now, sock);
                self.events.push(StTcpEvent::FinReleased {
                    conn: key,
                    reason,
                    at: now,
                });
            }
            ArbAction::DeclarePeerFailed => {
                // Routed by the caller; reaching here is a logic error we
                // surface loudly in debug builds and ignore in release.
                debug_assert!(false, "DeclarePeerFailed must go through verdicts");
            }
        }
    }

    // ----- internal: heartbeats ---------------------------------------------

    fn build_heartbeat(&mut self, now: SimTime) -> HbPayload {
        let mut conns = std::mem::take(&mut self.hb_scratch);
        conns.clear();
        conns.reserve(self.by_key.len());
        for (&key, &sock) in &self.by_key {
            let Some(conn) = self.tcp.conn(sock) else {
                continue;
            };
            conns.push(ConnHb {
                key,
                last_byte_received: conn.bytes_received(),
                last_ack_received: conn.last_ack_received(),
                last_app_byte_written: conn.app_bytes_written(),
                last_app_byte_read: conn.app_bytes_read(),
                fin_generated: conn.fin_generated(),
                rst_generated: conn.rst_generated(),
                app_suspected: self.watchdog_suspects(now, sock),
            });
        }
        HbPayload {
            seqno: self.hb_seq,
            role: self.role,
            rank: self.pool.as_ref().map_or(self.setup.rank, |p| p.my_rank),
            conns,
            ping: self.ping.active.then(|| self.ping.report()),
        }
    }

    fn send_heartbeats(&mut self, ctx: &mut NodeCtx<'_>) {
        // Delta mode (pair only): the v2 wire format with dirty-set
        // records. Pool members always speak v1 full-state.
        if self.setup.sttcp.hb_delta && self.pool.is_none() {
            self.send_heartbeats_v2(ctx);
            return;
        }
        // A frozen byzantine sender re-uses the last seqno forever;
        // receivers treat the payload as stale and never re-apply it.
        if self.byz_mode != Some(ByzantineHbMode::Freeze) {
            self.hb_seq = self.hb_seq.wrapping_add(1);
        }
        let mut hb = self.build_heartbeat(ctx.now());
        if self.byz_mode == Some(ByzantineHbMode::Regress) {
            // Cumulative counters can never shrink; a regression is the
            // canonical semantically-impossible lie.
            for c in &mut hb.conns {
                c.last_byte_received = c.last_byte_received.saturating_sub(100_000);
                c.last_app_byte_read = c.last_app_byte_read.saturating_sub(100_000);
            }
        }
        let wire = hb.encode();
        // Both endpoints derive the same span from wire-observable
        // fields, so emit and receive link up without any wire change.
        let span = SpanId::heartbeat(role_byte(hb.role), hb.rank, hb.seqno);
        let seqno = hb.seqno;
        let conns = hb.conns.len() as u32;
        let wire_bytes = wire.len() as u32;
        // Reclaim the conn buffer (and its capacity) for the next period.
        self.hb_scratch = hb.conns;
        let mut frames = 0u64;
        if let Some(pool) = &self.pool {
            ctx.profile_enter(Component::Pool);
            let dests: Vec<(Ipv4Addr, Option<SerialPortId>)> = pool
                .members
                .iter()
                .map(|(&ip, m)| (ip, m.serial_port))
                .collect();
            for (ip, port) in dests {
                if let Some(frame) = self.iface.frame_to(ip, IpProto::Heartbeat, wire.clone()) {
                    ctx.send_frame(self.iface.nic, frame);
                    ctx.flight(
                        span,
                        SpanId::NONE,
                        FlightKind::HbEmit {
                            seqno,
                            link: 0,
                            bytes: wire_bytes,
                            conns,
                        },
                    );
                    frames += 1;
                }
                if let Some(port) = port {
                    ctx.send_serial(port, wire.clone());
                    ctx.flight(
                        span,
                        SpanId::NONE,
                        FlightKind::HbEmit {
                            seqno,
                            link: 1,
                            bytes: wire_bytes,
                            conns,
                        },
                    );
                    frames += 1;
                }
            }
            ctx.profile_exit();
        } else {
            if let Some(frame) =
                self.iface
                    .frame_to(self.setup.peer_private_ip, IpProto::Heartbeat, wire.clone())
            {
                ctx.send_frame(self.iface.nic, frame);
                ctx.flight(
                    span,
                    SpanId::NONE,
                    FlightKind::HbEmit {
                        seqno,
                        link: 0,
                        bytes: wire_bytes,
                        conns,
                    },
                );
                frames += 1;
            }
            ctx.send_serial(self.serial_port, wire);
            ctx.flight(
                span,
                SpanId::NONE,
                FlightKind::HbEmit {
                    seqno,
                    link: 1,
                    bytes: wire_bytes,
                    conns,
                },
            );
            frames += 1;
        }
        // Bandwidth accounting: connection entries are the payload; the
        // header and optional ping trailer are framing overhead.
        let payload_per_frame = conns as u64 * HB_CONN_LEN as u64;
        let framing_per_frame = (wire_bytes as u64).saturating_sub(payload_per_frame);
        self.metrics.on_hb_round(
            frames,
            conns as u64 * frames,
            payload_per_frame * frames,
            framing_per_frame * frames,
        );
    }

    /// True when `hb`'s per-connection counters regress against what this
    /// receiver already accepted — semantically impossible for honest
    /// cumulative counters, so the whole payload is a lie.
    fn hb_regresses(hb: &HbPayload, known: &BTreeMap<u32, PeerConn>) -> bool {
        hb.conns.iter().any(|c| {
            known.get(&c.key).is_some_and(|e| {
                unwrap_u32_near(c.last_byte_received as u32, e.last_byte_received)
                    < e.last_byte_received
                    || unwrap_u32_near(c.last_app_byte_read as u32, e.last_app_byte_read)
                        < e.last_app_byte_read
            })
        })
    }

    fn handle_heartbeat(&mut self, now: SimTime, hb: &HbPayload, link: HbLink) {
        // Staleness filter: the same payload arrives on both links, and
        // the duplication/reorder faults can replay older frames. A
        // non-advancing seqno still proves the peer alive (refresh the
        // link monitor) but its counters must not be re-applied. The
        // liveness credit is bounded: replay tolerance only justifies
        // stale frames interleaved with fresh ones, so once the seqno
        // has been frozen past the heartbeat timeout the stream is
        // indistinguishable from a replay loop or a frozen byzantine
        // sender — it must starve the monitors so row 1 condemns the
        // peer instead of trusting it forever.
        if let Some(last) = self.peer_last_seqno {
            if hb.seqno.wrapping_sub(last) as i32 <= 0 {
                if now.saturating_since(self.peer_seqno_advanced_at)
                    <= self.setup.sttcp.hb_timeout()
                {
                    match link {
                        HbLink::Ip => self.ip_mon.on_heartbeat(now),
                        HbLink::Serial => self.serial_mon.on_heartbeat(now),
                    }
                    self.metrics.on_heartbeat(link, now);
                }
                return;
            }
        }
        // Byzantine sanity check: reject the whole payload — including
        // its liveness value — so a semantically corrupt stream starves
        // the link monitors and the liar is condemned by row 1, instead
        // of its lies driving hold-release or lag verdicts.
        if Self::hb_regresses(hb, &self.peer_conns) {
            if !self.byzantine_reported {
                self.byzantine_reported = true;
                self.events
                    .push(StTcpEvent::ByzantineHbRejected { at: now });
            }
            self.metrics.on_byzantine_rejected();
            return;
        }
        self.peer_last_seqno = Some(hb.seqno);
        self.peer_seqno_advanced_at = now;
        match link {
            HbLink::Ip => self.ip_mon.on_heartbeat(now),
            HbLink::Serial => self.serial_mon.on_heartbeat(now),
        }
        self.metrics.on_heartbeat(link, now);
        self.peer_ping = hb.ping;
        let mut arb_actions: Vec<(SocketId, u32, ArbAction)> = Vec::new();
        for c in &hb.conns {
            let entry = self.peer_conns.entry(c.key).or_default();
            entry.last_byte_received =
                unwrap_u32_near(c.last_byte_received as u32, entry.last_byte_received);
            entry.last_ack_received =
                unwrap_u32_near(c.last_ack_received as u32, entry.last_ack_received);
            entry.last_app_byte_written =
                unwrap_u32_near(c.last_app_byte_written as u32, entry.last_app_byte_written);
            entry.last_app_byte_read =
                unwrap_u32_near(c.last_app_byte_read as u32, entry.last_app_byte_read);
            entry.fin_or_rst |= c.fin_generated || c.rst_generated;
            entry.app_suspected |= c.app_suspected;
            if entry.app_suspected {
                self.peer_app_suspected = true;
            }
            let fin_or_rst = entry.fin_or_rst;
            let lbr = entry.last_byte_received;

            if let Some(&sock) = self.by_key.get(&c.key) {
                // Fresh peer positions: the lag detector must look again.
                self.check_socks.insert(sock);
                if let Some(ctl) = self.conns.get_mut(&sock) {
                    if let Some(a) = ctl.finarb.on_peer_hb(now, fin_or_rst) {
                        arb_actions.push((sock, c.key, a));
                    }
                }
                // The primary releases held bytes the backup has confirmed.
                if self.role == Role::Primary {
                    if let Some(conn) = self.tcp.conn_mut(sock) {
                        conn.release_hold_until(lbr);
                    }
                }
            }
        }
        for (sock, key, action) in arb_actions {
            self.apply_gate_action(now, sock, key, action);
        }
    }

    /// True when the peer's acknowledged state already covers a record
    /// changed at `changed_at`: the IP link's cumulative ack (IP frames
    /// carry every in-flight record) or the record's serial-shard link's
    /// ack has reached it, in the peer's view of this boot incarnation.
    fn ack_covers(&self, key: u32, changed_at: u32) -> bool {
        if self.peer_ack_epoch != self.hb_epoch {
            return false;
        }
        let ip_ack = self.peer_hb_acks.first().copied().unwrap_or(0);
        let shard_ack = self
            .peer_hb_acks
            .get(1 + self.shard_of(key))
            .copied()
            .unwrap_or(0);
        !seq_newer(changed_at, ip_ack) || !seq_newer(changed_at, shard_ack)
    }

    /// Delta-mode (v2) heartbeat emission: dirty-until-acked connection
    /// records, sharded `key % n` across the serial links, full-state
    /// resync frames until the peer has acknowledged this boot
    /// incarnation (covering loss, takeover, reboot, and join without
    /// any extra signalling).
    fn send_heartbeats_v2(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        if self.byz_mode != Some(ByzantineHbMode::Freeze) {
            self.hb_seq = self.hb_seq.wrapping_add(1);
        }
        let seq = self.hb_seq;
        let nserial = 1 + self.extra_serial_ports.len();
        let regress = self.byz_mode == Some(ByzantineHbMode::Regress);
        // No valid acks for this incarnation yet — or a byzantine sender,
        // which must lie about every connection to match v1 detection
        // semantics — forces full-state frames.
        let full = self.peer_ack_epoch != self.hb_epoch || regress;
        // Refresh the record cache. The candidate set is the endpoint's
        // touched list plus every record still awaiting an ack, so idle
        // connections cost nothing per heartbeat period. The optional
        // watchdog is the one signal that changes with *time* rather
        // than socket activity, so enabling it falls back to the full
        // scan.
        let touched = self.tcp.drain_touched();
        let scan_all = full || self.setup.sttcp.watchdog_timeout.is_some();
        let mut candidates: BTreeSet<u32> = BTreeSet::new();
        if scan_all {
            candidates.extend(self.by_key.keys().copied());
            let by_key = &self.by_key;
            self.hb_cache.retain(|k, _| by_key.contains_key(k));
        } else {
            for sock in touched {
                if let Some(ctl) = self.conns.get(&sock) {
                    candidates.insert(ctl.key);
                }
            }
            for (&key, e) in &self.hb_cache {
                if !self.ack_covers(key, e.changed_at) {
                    candidates.insert(key);
                }
            }
        }
        for key in candidates {
            let Some(&sock) = self.by_key.get(&key) else {
                self.hb_cache.remove(&key);
                continue;
            };
            let Some(conn) = self.tcp.conn(sock) else {
                self.hb_cache.remove(&key);
                continue;
            };
            let rec = ConnHb {
                key,
                last_byte_received: conn.bytes_received(),
                last_ack_received: conn.last_ack_received(),
                last_app_byte_written: conn.app_bytes_written(),
                last_app_byte_read: conn.app_bytes_read(),
                fin_generated: conn.fin_generated(),
                rst_generated: conn.rst_generated(),
                app_suspected: self.watchdog_suspects(now, sock),
            };
            match self.hb_cache.get_mut(&key) {
                Some(e) if e.rec == rec => {}
                Some(e) => {
                    e.rec = rec;
                    e.changed_at = seq;
                }
                None => {
                    self.hb_cache.insert(
                        key,
                        HbCacheEntry {
                            rec,
                            changed_at: seq,
                        },
                    );
                }
            }
        }
        // Select the records still in flight toward the peer.
        let mut ip_conns: Vec<ConnHb> = Vec::new();
        let mut serial_conns: Vec<Vec<ConnHb>> = vec![Vec::new(); nserial];
        for (&key, e) in &self.hb_cache {
            if !full && self.ack_covers(key, e.changed_at) {
                continue;
            }
            let mut rec = e.rec;
            if regress {
                rec.last_byte_received = rec.last_byte_received.saturating_sub(100_000);
                rec.last_app_byte_read = rec.last_app_byte_read.saturating_sub(100_000);
            }
            ip_conns.push(rec);
            serial_conns[key as usize % nserial].push(rec);
        }
        let kind = match full {
            true => HbFrameKind::Full,
            false => HbFrameKind::Delta,
        };
        let role = self.role;
        let rank = self.setup.rank;
        let ping = self.ping.active.then(|| self.ping.report());
        let acks = self.rx_link_seq.clone();
        let ack_epoch = self.rx_peer_epoch;
        let span = SpanId::heartbeat(role_byte(role), rank, seq);
        let mut frames = 0u64;
        let mut conn_entries = 0u64;
        let mut payload_bytes = 0u64;
        let mut framing_bytes = 0u64;
        let mut account = |wire_len: usize, nconns: usize| {
            frames += 1;
            conn_entries += nconns as u64;
            let payload = nconns as u64 * HB_CONN_LEN as u64;
            payload_bytes += payload;
            framing_bytes += (wire_len as u64).saturating_sub(payload);
        };
        let batch = self.setup.sttcp.hb_batch;
        // IP frames: every in-flight record (full cross-link redundancy),
        // split into batch parts when the round exceeds the batch knob.
        for f in build_link_frames(
            kind,
            self.hb_epoch,
            0,
            ack_epoch,
            &acks,
            seq,
            role,
            rank,
            ping,
            ip_conns,
            batch,
        ) {
            let nconns = f.hb.conns.len();
            let wire = f.encode();
            if let Some(frame) =
                self.iface
                    .frame_to(self.setup.peer_private_ip, IpProto::Heartbeat, wire.clone())
            {
                ctx.send_frame(self.iface.nic, frame);
                ctx.flight(
                    span,
                    SpanId::NONE,
                    FlightKind::HbEmit {
                        seqno: seq,
                        link: 0,
                        bytes: wire.len() as u32,
                        conns: nconns as u32,
                    },
                );
                account(wire.len(), nconns);
            }
        }
        // Serial frames: each link carries only its shard.
        for (s, conns) in serial_conns.into_iter().enumerate() {
            let port = match s {
                0 => self.serial_port,
                _ => self.extra_serial_ports[s - 1],
            };
            for f in build_link_frames(
                kind,
                self.hb_epoch,
                (1 + s) as u8,
                ack_epoch,
                &acks,
                seq,
                role,
                rank,
                ping,
                conns,
                batch,
            ) {
                let nconns = f.hb.conns.len();
                let wire = f.encode();
                ctx.send_serial(port, wire.clone());
                ctx.flight(
                    span,
                    SpanId::NONE,
                    FlightKind::HbEmit {
                        seqno: seq,
                        link: (1 + s) as u8,
                        bytes: wire.len() as u32,
                        conns: nconns as u32,
                    },
                );
                account(wire.len(), nconns);
            }
        }
        self.metrics
            .on_hb_round(frames, conn_entries, payload_bytes, framing_bytes);
    }

    /// v2 (delta) heartbeat intake: per-link staleness (each link sees
    /// each seqno once, and serial frames carry only their shard),
    /// per-connection ordering for counter application (cross-link
    /// reorder legitimately delivers older frames late), and ack/epoch
    /// bookkeeping for the return direction. Detection semantics match
    /// `handle_heartbeat` exactly: stale frames earn only bounded
    /// liveness credit, and regressing counters poison the whole frame.
    fn handle_heartbeat_v2(&mut self, now: SimTime, f: &HbFrame, link: usize) {
        let hb = &f.hb;
        let hblink = match link {
            0 => HbLink::Ip,
            _ => HbLink::Serial,
        };
        // A new peer incarnation voids all per-link and per-connection
        // ordering state; its acks of our frames restart from nothing, so
        // full frames flow both ways until re-acknowledged.
        if f.epoch != self.rx_peer_epoch {
            self.rx_peer_epoch = f.epoch;
            self.rx_link_seq = vec![0; self.hb_nlinks()];
            self.rx_link_batch = vec![RxBatch::default(); self.hb_nlinks()];
            for p in self.peer_conns.values_mut() {
                p.last_update_seq = 0;
            }
            self.peer_hb_acks = vec![0; self.hb_nlinks()];
            self.peer_ack_epoch = 0;
        }
        let last = self.rx_link_seq.get(link).copied().unwrap_or(0);
        if last != 0 && !seq_newer(hb.seqno, last) {
            // Replayed or frozen on this link: bounded liveness credit,
            // exactly like the v1 staleness path.
            if now.saturating_since(self.peer_seqno_advanced_at) <= self.setup.sttcp.hb_timeout() {
                match hblink {
                    HbLink::Ip => self.ip_mon.on_heartbeat(now),
                    HbLink::Serial => {
                        self.serial_mon.on_heartbeat(now);
                        if let Some(m) = self.serial_link_mons.get_mut(link.saturating_sub(1)) {
                            m.on_heartbeat(now);
                        }
                    }
                }
                self.metrics.on_heartbeat(hblink, now);
            }
            return;
        }
        // Batched (v3) rounds: parts share a seqno and must arrive in
        // order on their link. Part 0 opens a round (discarding any
        // half-finished predecessor); any other part is accepted only if
        // it is exactly the next part of the open round. An out-of-order
        // part means an earlier part was lost — the round can never
        // complete, so drop it and let the unacked records ride again.
        if f.parts > 1 {
            let ok = f.part == 0
                || self.rx_link_batch.get(link).is_some_and(|st| {
                    st.seqno == hb.seqno && st.parts == f.parts && st.next == f.part
                });
            if !ok {
                return;
            }
        }
        // Byzantine sanity check, against per-connection ordering: only
        // records this frame would actually update can regress; records
        // an older cross-link frame legitimately repeats are skipped.
        let regressing = hb.conns.iter().any(|c| {
            self.peer_conns.get(&c.key).is_some_and(|e| {
                (e.last_update_seq == 0 || !seq_newer(e.last_update_seq, hb.seqno))
                    && (unwrap_u32_near(c.last_byte_received as u32, e.last_byte_received)
                        < e.last_byte_received
                        || unwrap_u32_near(c.last_app_byte_read as u32, e.last_app_byte_read)
                            < e.last_app_byte_read)
            })
        });
        if regressing {
            if !self.byzantine_reported {
                self.byzantine_reported = true;
                self.events
                    .push(StTcpEvent::ByzantineHbRejected { at: now });
            }
            self.metrics.on_byzantine_rejected();
            return;
        }
        // The link's cumulative ack advances only once the whole round is
        // in hand: single-frame rounds immediately, batched rounds on
        // their final part. A poisoned or lost part never completes the
        // round, so the sender keeps resending the records.
        if f.parts > 1 {
            if let Some(st) = self.rx_link_batch.get_mut(link) {
                *st = RxBatch {
                    seqno: hb.seqno,
                    parts: f.parts,
                    next: f.part + 1,
                };
            }
        }
        if f.parts <= 1 || f.part + 1 == f.parts {
            if let Some(s) = self.rx_link_seq.get_mut(link) {
                *s = hb.seqno;
            }
        }
        let glob_fresh = self.peer_last_seqno.is_none_or(|l| seq_newer(hb.seqno, l));
        if glob_fresh {
            self.peer_last_seqno = Some(hb.seqno);
            self.peer_seqno_advanced_at = now;
            self.peer_ping = hb.ping;
        }
        match hblink {
            HbLink::Ip => self.ip_mon.on_heartbeat(now),
            HbLink::Serial => {
                self.serial_mon.on_heartbeat(now);
                if let Some(m) = self.serial_link_mons.get_mut(link.saturating_sub(1)) {
                    m.on_heartbeat(now);
                }
            }
        }
        self.metrics.on_heartbeat(hblink, now);
        // The peer's cumulative acks of our frames, valid only while they
        // refer to this boot incarnation.
        if f.ack_epoch == self.hb_epoch {
            self.peer_ack_epoch = f.ack_epoch;
            for (i, &a) in f.acks.iter().enumerate() {
                if let Some(slot) = self.peer_hb_acks.get_mut(i) {
                    if a != 0 && (*slot == 0 || seq_newer(a, *slot)) {
                        *slot = a;
                    }
                }
            }
        }
        // Apply records under per-connection ordering: equal seqno is the
        // same tick's frame on the other link and reapplies identical
        // values; strictly older frames are skipped per record.
        let mut arb_actions: Vec<(SocketId, u32, ArbAction)> = Vec::new();
        for c in &hb.conns {
            let entry = self.peer_conns.entry(c.key).or_default();
            if entry.last_update_seq != 0 && seq_newer(entry.last_update_seq, hb.seqno) {
                continue;
            }
            entry.last_update_seq = hb.seqno;
            entry.last_byte_received =
                unwrap_u32_near(c.last_byte_received as u32, entry.last_byte_received);
            entry.last_ack_received =
                unwrap_u32_near(c.last_ack_received as u32, entry.last_ack_received);
            entry.last_app_byte_written =
                unwrap_u32_near(c.last_app_byte_written as u32, entry.last_app_byte_written);
            entry.last_app_byte_read =
                unwrap_u32_near(c.last_app_byte_read as u32, entry.last_app_byte_read);
            entry.fin_or_rst |= c.fin_generated || c.rst_generated;
            entry.app_suspected |= c.app_suspected;
            if entry.app_suspected {
                self.peer_app_suspected = true;
            }
            let fin_or_rst = entry.fin_or_rst;
            let lbr = entry.last_byte_received;

            if let Some(&sock) = self.by_key.get(&c.key) {
                // Fresh peer positions: the lag detector must look again.
                self.check_socks.insert(sock);
                if let Some(ctl) = self.conns.get_mut(&sock) {
                    if let Some(a) = ctl.finarb.on_peer_hb(now, fin_or_rst) {
                        arb_actions.push((sock, c.key, a));
                    }
                }
                // The primary releases held bytes the backup has confirmed.
                if self.role == Role::Primary {
                    if let Some(conn) = self.tcp.conn_mut(sock) {
                        conn.release_hold_until(lbr);
                    }
                }
            }
        }
        for (sock, key, action) in arb_actions {
            self.apply_gate_action(now, sock, key, action);
        }
    }

    /// Pool-mode heartbeat intake: per-member staleness and byzantine
    /// filtering, rank tracking, and the pool-wide FIN/hold view.
    fn pool_handle_heartbeat(&mut self, now: SimTime, hb: &HbPayload, link: HbLink, src: Ipv4Addr) {
        let hb_timeout = self.setup.sttcp.hb_timeout();
        let mirror: Option<BTreeMap<u32, PeerConn>>;
        {
            let Some(pool) = &mut self.pool else {
                return;
            };
            let Some(m) = pool.members.get_mut(&src) else {
                return; // not a pool member; drop silently
            };
            if m.fenced {
                if hb.rank == m.rank {
                    // The fenced incarnation. Nothing it says counts until
                    // it rejoins under a fresh rank.
                    return;
                }
                // Rank changed ⇒ the member rebooted and re-integrated:
                // welcome the fresh incarnation back as a backup.
                m.reset_for_rejoin(hb_timeout, now);
            } else if hb.rank != m.rank {
                // Rank reassignment only happens at rejoin, so a changed
                // rank means a new incarnation even without a fence (the
                // member rebooted faster than we could condemn it).
                m.reset_for_rejoin(hb_timeout, now);
            }
            m.rank = hb.rank;
            // A member this server saw serving as Primary now speaks as
            // a Backup under the same rank: no live incarnation ever
            // demotes itself, so the host restarted faster than the
            // liveness timeout. The serving incarnation is gone — mark
            // the member defunct so fencing can condemn it even though
            // the reboot keeps its heartbeat links fresh. Checked before
            // the staleness filter: a fresh boot restarts seqnos, so its
            // first frames all look stale. Sticky until the member is
            // fenced and rejoins (or proves itself Primary again).
            if m.role == Role::Primary && hb.role == Role::Backup && !m.defunct {
                m.defunct = true;
                self.events.push(StTcpEvent::DefunctActiveDetected {
                    rank: m.rank,
                    at: now,
                });
            }
            // Staleness: duplicated / reordered frames, and the second
            // copy of every payload (it rides both links). Liveness yes,
            // counters no — and only within one heartbeat timeout of the
            // seqno last advancing, so a frozen stream starves the
            // monitors and quorum fencing condemns the sender.
            if let Some(last) = m.last_seqno {
                if hb.seqno.wrapping_sub(last) as i32 <= 0 {
                    if now.saturating_since(m.seqno_advanced_at) <= hb_timeout {
                        match link {
                            HbLink::Ip => m.ip_mon.on_heartbeat(now),
                            HbLink::Serial => m.serial_mon.on_heartbeat(now),
                        }
                        self.metrics.on_heartbeat(link, now);
                    }
                    return;
                }
            }
            // Byzantine sanity check, per member: reject the whole
            // payload — including its liveness value — so the liar's
            // monitors starve and quorum fencing condemns it.
            if Self::hb_regresses(hb, &m.conns) {
                if !m.byzantine_reported {
                    m.byzantine_reported = true;
                    self.events
                        .push(StTcpEvent::ByzantineHbRejected { at: now });
                }
                self.metrics.on_byzantine_rejected();
                return;
            }
            m.last_seqno = Some(hb.seqno);
            m.seqno_advanced_at = now;
            match link {
                HbLink::Ip => m.ip_mon.on_heartbeat(now),
                HbLink::Serial => m.serial_mon.on_heartbeat(now),
            }
            self.metrics.on_heartbeat(link, now);
            if hb.role == Role::Primary {
                // Serving again (or a reordered frame from its serving
                // days): either way the defunct evidence is withdrawn.
                m.defunct = false;
            }
            m.role = hb.role;
            for c in &hb.conns {
                let entry = m.conns.entry(c.key).or_default();
                entry.last_byte_received =
                    unwrap_u32_near(c.last_byte_received as u32, entry.last_byte_received);
                entry.last_ack_received =
                    unwrap_u32_near(c.last_ack_received as u32, entry.last_ack_received);
                entry.last_app_byte_written =
                    unwrap_u32_near(c.last_app_byte_written as u32, entry.last_app_byte_written);
                entry.last_app_byte_read =
                    unwrap_u32_near(c.last_app_byte_read as u32, entry.last_app_byte_read);
                entry.fin_or_rst |= c.fin_generated || c.rst_generated;
                entry.app_suspected |= c.app_suspected;
            }
            let m_rank = m.rank;
            let m_defunct = m.defunct;
            // Mirror the active member's positions into the pair-mode
            // slot: recovery fetching, join convergence, and the takeover
            // gap check all read `peer_conns` and work unchanged.
            mirror = (hb.role == Role::Primary).then(|| m.conns.clone());
            if hb.role == Role::Primary {
                pool.active_rank = m_rank;
            }
            // A fence target that speaks a fresh heartbeat is not dead —
            // unless the speaker is a restarted incarnation standing in
            // for the dead one (defunct): its liveness must not save the
            // incarnation the round is condemning.
            if pool.fence.as_ref().is_some_and(|f| f.target == src) && !m_defunct {
                pool.fence = None;
            }
        }
        if let Some(conns) = mirror {
            self.peer_conns = conns;
        }
        // FIN arbitration and hold release against the pool-wide view:
        // a FIN counts once any non-fenced member saw it; the active
        // releases held bytes only up to the *slowest* non-fenced member
        // (a member with no entry yet holds everything back).
        let Some(pool) = &self.pool else {
            return;
        };
        let mut arb_actions: Vec<(SocketId, u32, ArbAction)> = Vec::new();
        let i_am_active = self.role == Role::Primary;
        for (&key, &sock) in &self.by_key {
            let mut fin_or_rst = false;
            let mut min_lbr = u64::MAX;
            let mut any_member = false;
            for m in pool.members.values().filter(|m| !m.fenced) {
                any_member = true;
                match m.conns.get(&key) {
                    Some(e) => {
                        fin_or_rst |= e.fin_or_rst;
                        min_lbr = min_lbr.min(e.last_byte_received);
                    }
                    None => min_lbr = 0,
                }
            }
            if let Some(ctl) = self.conns.get_mut(&sock) {
                if let Some(a) = ctl.finarb.on_peer_hb(now, fin_or_rst) {
                    arb_actions.push((sock, key, a));
                }
            }
            if i_am_active {
                let release = if any_member { min_lbr } else { u64::MAX };
                if let Some(conn) = self.tcp.conn_mut(sock) {
                    conn.release_hold_until(release);
                }
            }
        }
        for (sock, key, action) in arb_actions {
            self.apply_gate_action(now, sock, key, action);
        }
    }

    // ----- internal: verdicts and recovery actions ---------------------------

    fn declare_peer_failed(&mut self, ctx: &mut NodeCtx<'_>, reason: FailureReason) {
        if !self.ft_mode {
            return;
        }
        let now = ctx.now();
        self.ft_mode = false;
        self.peer_alive = false;
        self.events
            .push(StTcpEvent::PeerDeclaredFailed { reason, at: now });
        self.metrics.on_verdict(reason);
        // The verdict is causally parented to the last heartbeat this
        // server accepted — the final evidence before it condemned the
        // peer; the STONITH joins the verdict's span.
        let vspan = SpanId::verdict(ctx.node_id().0 as u64, now.as_micros());
        self.verdict_span = vspan;
        ctx.flight(
            vspan,
            self.last_hb_rx_span,
            FlightKind::Verdict {
                reason: reason_code(reason),
            },
        );
        ctx.trace(format!("{}: peer declared failed: {reason}", self.role));
        // STONITH before touching the connection (no dual-active).
        ctx.power_off(self.setup.peer_node, self.setup.sttcp.stonith_delay);
        self.events.push(StTcpEvent::StonithIssued { at: now });
        ctx.flight(
            vspan,
            self.last_hb_rx_span,
            FlightKind::Stonith {
                target: self.setup.peer_node.0 as u32,
            },
        );

        match self.role {
            Role::Backup => {
                // Complete the takeover only after the peer is provably
                // silent (power controller latency).
                ctx.set_timer(self.setup.sttcp.stonith_delay, TOKEN_TAKEOVER);
            }
            Role::Primary => {
                self.events.push(StTcpEvent::WentNonFt { reason, at: now });
                ctx.trace("primary: running non-fault-tolerant".to_string());
                let socks: Vec<SocketId> = self.conns.keys().copied().collect();
                for sock in socks {
                    let (key, action) = match self.conns.get_mut(&sock) {
                        Some(ctl) => (ctl.key, ctl.finarb.on_peer_failed()),
                        None => continue,
                    };
                    if let Some(a) = action {
                        self.apply_gate_action(now, sock, key, a);
                    }
                    // The extended receive buffer has no consumer anymore.
                    if let Some(conn) = self.tcp.conn_mut(sock) {
                        conn.release_hold_until(u64::MAX);
                    }
                }
            }
        }
    }

    fn complete_takeover(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        self.role = Role::Primary;
        self.took_over = true;
        self.events.push(StTcpEvent::TookOver { at: now });
        // The takeover joins the verdict's span: the dump reads as one
        // chain, heartbeat evidence → verdict → STONITH → takeover.
        let tspan = if self.verdict_span.is_none() {
            SpanId::verdict(ctx.node_id().0 as u64, now.as_micros())
        } else {
            self.verdict_span
        };
        ctx.flight(
            tspan,
            self.last_hb_rx_span,
            FlightKind::Takeover {
                conns: self.conns.len() as u32,
            },
        );
        ctx.trace("backup: taking over client connections".to_string());
        // Pool mode: other backups may survive the takeover — keep serving
        // them fault-tolerant (extended receive buffer stays armed). Pair
        // mode has nobody left to feed.
        let keep_ft = self
            .pool
            .as_ref()
            .is_some_and(|p| p.members.values().any(|m| !m.fenced));
        // From now on this host speaks for the service: orphan segments
        // (e.g. for a connection reset as unrecoverable) get ordinary
        // RSTs instead of shadow silence.
        self.tcp.set_rst_policy(RstPolicy::Send);
        let mut accept_tcp = self.setup.tcp.clone();
        if keep_ft {
            accept_tcp.hold_buf = Some(self.setup.sttcp.hold_buf);
        }
        self.tcp.listen(
            self.setup.service_port,
            ListenConfig {
                tcp: accept_tcp,
                egress: EgressMode::Normal,
            },
        );
        let socks: Vec<SocketId> = self.conns.keys().copied().collect();
        for sock in socks {
            self.tcp.set_egress(sock, EgressMode::Normal);
            if keep_ft {
                if let Some(conn) = self.tcp.conn_mut(sock) {
                    conn.enable_hold(self.setup.sttcp.hold_buf);
                }
                if let Some(ctl) = self.conns.get(&sock) {
                    self.events.push(StTcpEvent::HoldArmed {
                        conn: ctl.key,
                        at: now,
                    });
                }
            }
            let (key, action) = match self.conns.get_mut(&sock) {
                Some(ctl) => (ctl.key, ctl.finarb.on_takeover()),
                None => continue,
            };
            // The paper's output-commit caveat: if the dead primary had
            // received-and-acked client bytes this backup never got, those
            // bytes exist nowhere anymore. Without a logger the connection
            // cannot be continued correctly; reset it rather than hang the
            // client forever ("ST-TCP treats this failure as
            // unrecoverable", §4.3).
            let gap = self.peer_conns.get(&key).and_then(|peer| {
                let mine = self.tcp.conn(sock)?.bytes_received();
                (peer.last_byte_received > mine).then_some(mine)
            });
            if let Some(missing_from) = gap {
                self.events.push(StTcpEvent::UnrecoverableGap {
                    conn: key,
                    missing_from,
                    at: now,
                });
                ctx.trace(format!(
                    "takeover: conn {key:08x} unrecoverable (gap from {missing_from}); resetting"
                ));
                self.tcp.set_fin_gate(sock, FinGate::Open);
                self.tcp.abort(now, sock);
                if let Some(ctl) = self.conns.get_mut(&sock) {
                    ctl.closed = true;
                }
                continue;
            }
            if let Some(a) = action {
                self.apply_gate_action(now, sock, key, a);
            } else {
                self.tcp.set_fin_gate(sock, FinGate::Open);
            }
            // Everything between snd.una and the cursor was generated but
            // suppressed — never on the wire. Rewind and stream it afresh
            // (ack-clocked), rather than dribbling it out one
            // retransmission per RTO.
            if let Some(conn) = self.tcp.conn_mut(sock) {
                if !matches!(conn.state(), TcpState::Closed) {
                    conn.rewind_unacked(now);
                }
            }
        }
        if let Some(pool) = &mut self.pool {
            pool.active_rank = pool.my_rank;
            self.ft_mode = keep_ft;
            self.peer_alive = keep_ft;
            // The dead active's mirror served the gap check above; from
            // here the new active's own positions are authoritative.
            self.peer_conns.clear();
            self.peer_app_suspected = false;
        }
        // Delta mode: the dead peer's acks are void; a future joiner is
        // served full-state frames until it acknowledges this epoch.
        self.peer_hb_acks = vec![0; self.hb_nlinks()];
        self.peer_ack_epoch = 0;
        self.flush(ctx);
    }

    fn run_checks(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();

        // Metrics sampling: hold occupancy and aggregate TCP state, once
        // per check period.
        let mut hold = 0u64;
        let mut cwnd_sum = 0u64;
        let mut send_occ = 0u64;
        let mut recv_occ = 0u64;
        let mut live_conns = false;
        let mut hold_overflow_any = false;
        for &sock in self.by_key.values() {
            if let Some(c) = self.tcp.conn(sock) {
                live_conns = true;
                hold += c.hold_used() as u64;
                cwnd_sum += c.cwnd();
                send_occ += c.send_occupancy() as u64;
                recv_occ += c.recv_occupancy() as u64;
                hold_overflow_any |= c.hold_overflow();
            }
        }
        self.metrics.sample_hold(hold);
        if live_conns {
            self.metrics.sample_tcp(cwnd_sum, send_occ, recv_occ);
        }

        // Pool mode replaces the pairwise detector matrix with per-member
        // liveness plus quorum fencing.
        if self.pool.is_some() {
            ctx.profile_enter(Component::Pool);
            self.run_pool_checks(ctx);
            ctx.profile_exit();
            return;
        }

        // Link liveness edges.
        let ip_alive = self.ip_mon.is_alive(now);
        let serial_alive = self.serial_mon.is_alive(now);
        if ip_alive != self.ip_was_alive {
            self.events.push(if ip_alive {
                StTcpEvent::HbLinkUp {
                    link: HbLink::Ip,
                    at: now,
                }
            } else {
                StTcpEvent::HbLinkDown {
                    link: HbLink::Ip,
                    at: now,
                }
            });
            self.ip_was_alive = ip_alive;
            if ip_alive {
                // Link restored: lag that formed (or persisted, frozen)
                // while the IP heartbeat was down produced no activity to
                // mark connections with, so give every connection one
                // evaluation to re-establish detector baselines.
                self.check_socks.extend(self.conns.keys().copied());
            } else {
                // With the IP heartbeat down, app lag is a symptom of the
                // network fault, not an app crash. The detector loop below
                // only visits active connections, so quiesce every lag
                // tracker once at the edge — stale watermarks must not
                // produce a verdict when the link returns.
                for ctl in self.conns.values_mut() {
                    ctl.applag.reset();
                }
            }
        }
        if serial_alive != self.serial_was_alive {
            self.events.push(if serial_alive {
                StTcpEvent::HbLinkUp {
                    link: HbLink::Serial,
                    at: now,
                }
            } else {
                StTcpEvent::HbLinkDown {
                    link: HbLink::Serial,
                    at: now,
                }
            });
            self.serial_was_alive = serial_alive;
        }

        self.check_post_takeover_holes(ctx);

        // Re-integration: a joiner catches up (fetching bytes its tap
        // missed while it was down) and completes once converged. This runs
        // *before* the ft_mode gate below — a joiner is deliberately not
        // fault-tolerant yet, but must still make progress.
        if self.join.is_some() {
            self.run_recovery(ctx);
            self.try_finish_join(ctx);
        }

        if !self.ft_mode {
            return;
        }

        // Row 1: both heartbeat links dead ⇒ the peer host is gone.
        if !ip_alive && !serial_alive {
            self.declare_peer_failed(ctx, FailureReason::HbBothLinksDown);
            return;
        }

        // Row 4: IP heartbeat dead, serial alive ⇒ local network failure
        // somewhere; figure out whose.
        if !ip_alive && serial_alive {
            if !self.ping.active {
                self.ping.active = true;
                self.ping.awaiting = None;
                self.ping.consecutive_failures = 0;
                self.ping.attempts = 0;
                ctx.set_timer(SimDuration::ZERO, TOKEN_PING);
            }
            let obs = self.net_observation();
            if let Some(reason) = self.net_detect.check(now, &obs) {
                self.declare_peer_failed(ctx, reason);
                return;
            }
        } else {
            if self.ping.active {
                self.ping.active = false;
            }
            self.net_detect.reset();
        }

        // Rows 2/3 compare application positions against the peer's
        // heartbeat, which is only meaningful while heartbeats are
        // *fresh*: a dead host's last heartbeat frozen in time must be
        // handled by the liveness detector (row 1), not misread as an
        // application crash.
        let hb_staleness = {
            let last = match (self.ip_mon.last_rx(), self.serial_mon.last_rx()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            last.map(|t| now.saturating_since(t))
        };
        let hb_fresh = hb_staleness
            .is_some_and(|s| s <= self.setup.sttcp.hb_period + self.setup.sttcp.check_period * 2);

        let mut verdict: Option<FailureReason> = None;
        let mut arb_actions: Vec<(SocketId, u32, ArbAction)> = Vec::new();
        // Only connections with recent activity or an armed detector need
        // the walk; a connection leaves the set once both its arbiters are
        // provably inert (no deadline, no lag) and re-enters on any local
        // or peer-reported movement.
        let socks: Vec<SocketId> = self.check_socks.iter().copied().collect();
        for sock in socks {
            let Some(ctl) = self.conns.get_mut(&sock) else {
                self.check_socks.remove(&sock);
                continue;
            };
            if ctl.closed {
                self.check_socks.remove(&sock);
                continue;
            }
            let key = ctl.key;
            // FIN arbitration deadlines.
            if let Some(a) = ctl.finarb.on_check(now) {
                if a == ArbAction::DeclarePeerFailed {
                    verdict = verdict.or(Some(FailureReason::FinMismatchTimeout));
                } else {
                    arb_actions.push((sock, key, a));
                }
            }
            // Application-lag detection (rows 2/3) presumes the network is
            // healthy — with the IP heartbeat down, any app lag is a
            // symptom of the network failure and blame is assigned by the
            // row-4 detectors above instead. Also needs this connection in
            // the peer's heartbeat.
            if !ip_alive {
                if let Some(ctl) = self.conns.get_mut(&sock) {
                    ctl.applag.reset();
                    if !ctl.finarb.needs_check() {
                        self.check_socks.remove(&sock);
                    }
                }
                continue;
            }
            if !hb_fresh {
                continue; // stale evidence: let the liveness detector rule
            }
            if let Some(peer) = self.peer_conns.get(&key).copied() {
                let (my_read, my_written) = match self.tcp.conn(sock) {
                    Some(c) => (c.app_bytes_read(), c.app_bytes_written()),
                    None => continue,
                };
                if let Some(ctl) = self.conns.get_mut(&sock) {
                    if let Some(reason) = ctl.applag.check(
                        now,
                        my_read,
                        my_written,
                        peer.last_app_byte_read,
                        peer.last_app_byte_written,
                    ) {
                        verdict = verdict.or(Some(reason));
                    }
                }
            }
            let inert = self
                .conns
                .get(&sock)
                .is_some_and(|c| !c.finarb.needs_check() && !c.applag.needs_check());
            if inert {
                self.check_socks.remove(&sock);
            }
        }
        for (sock, key, action) in arb_actions {
            self.apply_gate_action(now, sock, key, action);
        }
        if let Some(reason) = verdict {
            self.declare_peer_failed(ctx, reason);
            return;
        }

        // §4.2.2 extension: the peer's own watchdog reported its replica
        // dead. A self-report is actionable even on an idle connection —
        // exactly the case the transport-layer detectors cannot see.
        if self.peer_app_suspected {
            self.declare_peer_failed(ctx, FailureReason::WatchdogReport);
            return;
        }

        // Row 5 escalation: the primary's hold buffer overflowed — the
        // backup cannot catch up. (Computed in the sampling walk above.)
        if self.role == Role::Primary && hold_overflow_any {
            self.declare_peer_failed(ctx, FailureReason::HoldOverflow);
            return;
        }

        // Row 5: the backup fetches bytes it missed.
        if self.role == Role::Backup {
            self.run_recovery(ctx);
        }
    }

    /// Post-takeover output-commit check (§4.3): a receive hole with
    /// client data stranded beyond it that the client never refills —
    /// because the dead primary already acked those bytes — makes the
    /// connection unrecoverable. Detect it by hole persistence; a
    /// repairable hole is refilled by a client retransmission well
    /// within `gap_giveup`.
    fn check_post_takeover_holes(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.took_over {
            return;
        }
        let now = ctx.now();
        let socks: Vec<SocketId> = self.conns.keys().copied().collect();
        for sock in socks {
            let stranded = self
                .tcp
                .conn(sock)
                .map(|c| c.ooo_bytes() > 0 && !matches!(c.state(), TcpState::Closed))
                .unwrap_or(false);
            let Some(ctl) = self.conns.get_mut(&sock) else {
                continue;
            };
            if ctl.closed || !stranded {
                ctl.hole_since = None;
                continue;
            }
            let since = *ctl.hole_since.get_or_insert(now);
            if now.saturating_since(since) >= self.setup.sttcp.gap_giveup {
                let key = ctl.key;
                let missing_from = self.tcp.conn(sock).map(|c| c.bytes_received()).unwrap_or(0);
                self.events.push(StTcpEvent::UnrecoverableGap {
                    conn: key,
                    missing_from,
                    at: now,
                });
                ctx.trace(format!(
                    "post-takeover: conn {key:08x} hole at {missing_from} never refilled; resetting"
                ));
                self.tcp.set_fin_gate(sock, FinGate::Open);
                self.tcp.abort(now, sock);
                if let Some(ctl) = self.conns.get_mut(&sock) {
                    ctl.closed = true;
                }
            }
        }
    }

    // ----- internal: pool checks and quorum fencing ---------------------------

    /// The pool-mode check tick. The pairwise detector matrix (app-lag,
    /// net-detect, watchdog relay, hold-overflow escalation, FIN-mismatch
    /// verdicts) presumes exactly one peer whose word is final; in a pool
    /// the only failure verdict is the quorum fence, so none of those run
    /// here — per-member liveness plus fencing covers host loss, and the
    /// FIN arbiter self-resolves its deadlines.
    fn run_pool_checks(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        if let Some(pool) = &self.pool {
            let strength = pool.strength(now);
            self.metrics.sample_pool_strength(strength);
        }
        self.check_post_takeover_holes(ctx);

        // FIN arbitration deadlines. `DeclarePeerFailed` (the pairwise
        // FIN-mismatch verdict) is dropped: the arbiter resolves itself
        // when it fires, and liveness verdicts arrive only via fencing.
        let mut arb_actions: Vec<(SocketId, u32, ArbAction)> = Vec::new();
        let socks: Vec<SocketId> = self.conns.keys().copied().collect();
        for sock in socks {
            let Some(ctl) = self.conns.get_mut(&sock) else {
                continue;
            };
            if ctl.closed {
                continue;
            }
            let key = ctl.key;
            if let Some(a) = ctl.finarb.on_check(now) {
                if a != ArbAction::DeclarePeerFailed {
                    arb_actions.push((sock, key, a));
                }
            }
        }
        for (sock, key, action) in arb_actions {
            self.apply_gate_action(now, sock, key, action);
        }

        if self.join.is_some() {
            // A joiner fetches and converges but never fences: until the
            // join completes it has no say over anyone's life.
            self.run_recovery(ctx);
            self.try_finish_join(ctx);
            return;
        }
        if self.role == Role::Backup {
            self.run_recovery(ctx);
        }
        self.fence_tick(ctx);
    }

    /// Drives this server's fence round: abandon a round whose target
    /// revived, open a round against a dead member when eligible, and
    /// (re-)solicit votes every tick until quorum or abandonment.
    fn fence_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        let mut open_event: Option<(u8, u32)> = None;
        let mut round_msg: Option<CtrlMsg> = None;
        let mut voters: Vec<(Ipv4Addr, Option<SerialPortId>)> = Vec::new();
        {
            let Some(pool) = &mut self.pool else {
                return;
            };
            if let Some(f) = &pool.fence {
                // A revived target abandons the round — unless it is a
                // defunct restart, whose freshness is the new incarnation
                // speaking, not the condemned one surviving.
                if pool
                    .members
                    .get(&f.target)
                    .is_some_and(|m| m.alive(now) && !m.defunct)
                {
                    pool.fence = None;
                }
            }
            if pool.fence.is_none() {
                let dead: Vec<(Ipv4Addr, u8)> = pool
                    .members
                    .iter()
                    .filter(|(_, m)| !m.fenced && m.condemnable(now))
                    .map(|(&ip, m)| (ip, m.rank))
                    .collect();
                // The dead active is served first: while it is unfenced
                // nobody is eligible to condemn a dead backup, and the
                // takeover it unblocks restores service.
                let target = dead
                    .iter()
                    .find(|&&(_, r)| r == pool.active_rank)
                    .or_else(|| dead.iter().min_by_key(|&&(_, r)| r))
                    .copied();
                if let Some((tip, trank)) = target {
                    let eligible = if trank == pool.active_rank {
                        // Rank order: only the lowest-ranked live backup
                        // campaigns to fence the active (and take over).
                        self.role == Role::Backup
                            && !pool.members.values().any(|m| {
                                !m.fenced
                                    && !m.defunct
                                    && m.rank != trank
                                    && m.alive(now)
                                    && m.rank < pool.my_rank
                            })
                    } else {
                        // The active fences dead backups.
                        self.role == Role::Primary
                    };
                    if eligible {
                        pool.epoch = pool.epoch.wrapping_add(1);
                        let mut votes = BTreeSet::new();
                        votes.insert(pool.my_rank);
                        pool.fence = Some(FenceRound {
                            epoch: pool.epoch,
                            target: tip,
                            target_rank: trank,
                            votes,
                        });
                        open_event = Some((trank, pool.epoch));
                    }
                }
            }
            if let Some(f) = &pool.fence {
                round_msg = Some(CtrlMsg::FenceRequest {
                    epoch: f.epoch,
                    target_rank: f.target_rank,
                    candidate_rank: pool.my_rank,
                });
                let target = f.target;
                voters = pool
                    .members
                    .iter()
                    .filter(|(&ip, m)| !m.fenced && ip != target)
                    .map(|(&ip, m)| (ip, m.serial_port))
                    .collect();
            }
        }
        if let Some((target_rank, epoch)) = open_event {
            self.events.push(StTcpEvent::FenceRequested {
                target_rank,
                epoch,
                at: now,
            });
            // The round's span is shared by every member: request,
            // votes, and commit all derive it from (epoch, target).
            ctx.flight(
                SpanId::fence(u64::from(epoch), target_rank),
                self.last_hb_rx_span,
                FlightKind::FenceRequest {
                    epoch: u64::from(epoch),
                    target_rank,
                },
            );
            ctx.trace(format!(
                "{}: fence round {epoch} opened against rank {target_rank}",
                self.role
            ));
        }
        if let Some(msg) = round_msg {
            for (ip, port) in voters {
                self.send_ctrl_to(ctx, ip, port, &msg);
            }
        }
        // In a degenerate pool the initiator's own vote is the quorum.
        self.try_complete_fence(ctx);
    }

    /// A pool member asks this server to confirm `target_rank` dead so
    /// that `candidate_rank` may fence it. Grant only when this server's
    /// own evidence agrees — target silent on both links — and, for a
    /// takeover fence, only to the best-ranked live candidate.
    fn handle_fence_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        src: Ipv4Addr,
        epoch: u32,
        target_rank: u8,
        candidate_rank: u8,
    ) {
        if self.join.is_some() {
            return; // a joiner has no vote yet
        }
        let now = ctx.now();
        ctx.flight(
            SpanId::fence(u64::from(epoch), target_rank),
            SpanId::NONE,
            FlightKind::FenceRequest {
                epoch: u64::from(epoch),
                target_rank,
            },
        );
        let reply;
        let port;
        {
            let Some(pool) = &self.pool else {
                return;
            };
            let my_rank = pool.my_rank;
            let candidate_ok = pool
                .members
                .get(&src)
                .is_some_and(|m| !m.fenced && !m.defunct && m.rank == candidate_rank);
            let target_dead = pool
                .members
                .values()
                .any(|m| !m.fenced && m.rank == target_rank && m.condemnable(now));
            let mut granted = candidate_ok && target_dead && target_rank != my_rank;
            if granted && target_rank == pool.active_rank {
                // Never endorse a worse-ranked candidate while a better
                // live one exists — including this voter itself.
                let better_live = my_rank < candidate_rank
                    || pool.members.values().any(|m| {
                        !m.fenced
                            && !m.defunct
                            && m.rank != target_rank
                            && m.alive(now)
                            && m.rank < candidate_rank
                    });
                if better_live {
                    granted = false;
                }
            }
            port = pool.members.get(&src).and_then(|m| m.serial_port);
            reply = CtrlMsg::FenceAck {
                epoch,
                target_rank,
                voter_rank: my_rank,
                granted,
            };
            ctx.flight(
                SpanId::fence(u64::from(epoch), target_rank),
                SpanId::NONE,
                FlightKind::FenceAck {
                    epoch: u64::from(epoch),
                    target_rank,
                    voter_rank: my_rank,
                    granted,
                },
            );
        }
        self.send_ctrl_to(ctx, src, port, &reply);
    }

    /// A vote arrived for this server's fence round.
    fn handle_fence_ack(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        epoch: u32,
        target_rank: u8,
        voter_rank: u8,
        granted: bool,
    ) {
        ctx.flight(
            SpanId::fence(u64::from(epoch), target_rank),
            SpanId::NONE,
            FlightKind::FenceAck {
                epoch: u64::from(epoch),
                target_rank,
                voter_rank,
                granted,
            },
        );
        {
            let Some(pool) = &mut self.pool else {
                return;
            };
            let Some(f) = &mut pool.fence else {
                return;
            };
            if f.epoch != epoch || f.target_rank != target_rank || !granted {
                return;
            }
            f.votes.insert(voter_rank);
        }
        self.try_complete_fence(ctx);
    }

    /// Completes this server's fence round once a majority of the
    /// surviving membership confirmed the target dead: fence, STONITH,
    /// broadcast the commit, and either take over (dead active) or carry
    /// on with the remaining pool.
    fn try_complete_fence(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        let fenced;
        {
            let Some(pool) = &mut self.pool else {
                return;
            };
            let Some(f) = &pool.fence else {
                return;
            };
            if f.votes.len() < pool.quorum_needed(f.target_rank) {
                return;
            }
            let target = f.target;
            let target_rank = f.target_rank;
            let votes = f.votes.len() as u32;
            let epoch = f.epoch;
            pool.fence = None;
            let Some(m) = pool.members.get_mut(&target) else {
                return;
            };
            m.fenced = true;
            fenced = (target_rank, m.node, epoch, votes);
        }
        let (target_rank, target_node, epoch, votes) = fenced;
        self.events.push(StTcpEvent::FenceQuorumReached {
            target_rank,
            votes,
            at: now,
        });
        self.events.push(StTcpEvent::PoolMemberFenced {
            rank: target_rank,
            at: now,
        });
        self.events.push(StTcpEvent::PeerDeclaredFailed {
            reason: FailureReason::HbBothLinksDown,
            at: now,
        });
        self.metrics.on_verdict(FailureReason::HbBothLinksDown);
        // Quorum: the commit closes the fence span, and the pool-mode
        // verdict is parented to the round that produced it.
        let fspan = SpanId::fence(u64::from(epoch), target_rank);
        ctx.flight(
            fspan,
            SpanId::NONE,
            FlightKind::FenceCommit {
                epoch: u64::from(epoch),
                target_rank,
            },
        );
        let vspan = SpanId::verdict(ctx.node_id().0 as u64, now.as_micros());
        self.verdict_span = vspan;
        ctx.flight(
            vspan,
            fspan,
            FlightKind::Verdict {
                reason: reason_code(FailureReason::HbBothLinksDown),
            },
        );
        ctx.trace(format!(
            "{}: quorum ({votes}) fenced rank {target_rank}; STONITH",
            self.role
        ));
        // STONITH before touching any connection (no dual-active).
        ctx.power_off(target_node, self.setup.sttcp.stonith_delay);
        self.events.push(StTcpEvent::StonithIssued { at: now });
        ctx.flight(
            vspan,
            fspan,
            FlightKind::Stonith {
                target: target_node.0 as u32,
            },
        );
        let (live_others, was_active, survivors) = {
            let pool = self.pool.as_ref().expect("pool checked above");
            let survivors: Vec<(Ipv4Addr, Option<SerialPortId>)> = pool
                .members
                .iter()
                .filter(|(_, m)| !m.fenced)
                .map(|(&ip, m)| (ip, m.serial_port))
                .collect();
            (
                pool.live_non_fenced(now),
                target_rank == pool.active_rank,
                survivors,
            )
        };
        self.ft_mode = live_others > 0;
        self.peer_alive = live_others > 0;
        // Tell the survivors: they mark the member fenced without needing
        // their own quorum, and a losing simultaneous candidate abandons
        // its round.
        let commit = CtrlMsg::FenceCommit { epoch, target_rank };
        for (ip, port) in survivors {
            self.send_ctrl_to(ctx, ip, port, &commit);
        }
        if was_active {
            // Complete the takeover only after the target is provably
            // silent (power controller latency).
            ctx.set_timer(self.setup.sttcp.stonith_delay, TOKEN_TAKEOVER);
        } else if self.role == Role::Primary && live_others == 0 {
            // Last member standing: run open, non-fault-tolerant.
            self.events.push(StTcpEvent::WentNonFt {
                reason: FailureReason::HbBothLinksDown,
                at: now,
            });
            ctx.trace("active: pool exhausted; running non-fault-tolerant".to_string());
            self.tcp.listen(
                self.setup.service_port,
                ListenConfig {
                    tcp: self.setup.tcp.clone(),
                    egress: EgressMode::Normal,
                },
            );
            let socks: Vec<SocketId> = self.conns.keys().copied().collect();
            for sock in socks {
                let (key, action) = match self.conns.get_mut(&sock) {
                    Some(ctl) => (ctl.key, ctl.finarb.on_peer_failed()),
                    None => continue,
                };
                if let Some(a) = action {
                    self.apply_gate_action(now, sock, key, a);
                }
                if let Some(conn) = self.tcp.conn_mut(sock) {
                    conn.release_hold_until(u64::MAX);
                }
            }
        }
    }

    /// Another member completed a fence round: adopt its verdict.
    fn handle_fence_commit(&mut self, ctx: &mut NodeCtx<'_>, target_rank: u8) {
        let now = ctx.now();
        let fenced_any;
        {
            let Some(pool) = &mut self.pool else {
                return;
            };
            if target_rank == pool.my_rank {
                // Someone fenced *me*; the STONITH is already in flight
                // and resolves this incarnation. Nothing to do.
                return;
            }
            let mut any = false;
            for m in pool.members.values_mut() {
                if m.rank == target_rank && !m.fenced {
                    m.fenced = true;
                    any = true;
                }
            }
            if pool
                .fence
                .as_ref()
                .is_some_and(|f| f.target_rank == target_rank)
            {
                pool.fence = None;
            }
            fenced_any = any;
        }
        if fenced_any {
            self.events.push(StTcpEvent::PoolMemberFenced {
                rank: target_rank,
                at: now,
            });
            ctx.trace(format!(
                "{}: adopted fence commit against rank {target_rank}",
                self.role
            ));
        }
    }

    fn net_observation(&self) -> NetObservation {
        let mut obs = NetObservation {
            my_ping: self.ping.active.then(|| self.ping.report()),
            peer_ping: self.peer_ping,
            ..Default::default()
        };
        for (&key, &sock) in &self.by_key {
            let Some(conn) = self.tcp.conn(sock) else {
                continue;
            };
            let Some(peer) = self.peer_conns.get(&key) else {
                continue;
            };
            obs.my_bytes += conn.bytes_received();
            obs.peer_bytes += peer.last_byte_received;
            obs.my_acks += conn.last_ack_received();
            obs.peer_acks += peer.last_ack_received;
        }
        obs
    }

    fn run_recovery(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        let mut requests = Vec::new();
        for (&key, &sock) in &self.by_key {
            let Some(conn) = self.tcp.conn(sock) else {
                continue;
            };
            let Some(peer) = self.peer_conns.get(&key) else {
                continue;
            };
            let mine = conn.bytes_received();
            if peer.last_byte_received <= mine {
                if let Some(ctl) = self.conns.get_mut(&sock) {
                    if ctl.recovering {
                        ctl.recovering = false;
                        self.events.push(StTcpEvent::RecoveryCompleted {
                            conn: key,
                            through: mine,
                            at: now,
                        });
                    }
                }
                continue;
            }
            let Some(ctl) = self.conns.get_mut(&sock) else {
                continue;
            };
            let due = ctl
                .last_fetch_at
                .map(|t| now.saturating_since(t) >= self.setup.sttcp.recovery_interval)
                .unwrap_or(true);
            if !due {
                continue;
            }
            ctl.last_fetch_at = Some(now);
            if !ctl.recovering {
                ctl.recovering = true;
                self.events.push(StTcpEvent::RecoveryRequested {
                    conn: key,
                    from: mine,
                    at: now,
                });
            }
            requests.push(CtrlMsg::FetchRequest {
                conn: key,
                from: mine,
                max: self.setup.sttcp.recovery_chunk as u32,
            });
        }
        for req in requests {
            let CtrlMsg::FetchRequest { conn, .. } = req else {
                unreachable!()
            };
            self.send_ctrl_conn(ctx, conn, &req);
        }
    }

    // ----- internal: re-integration -----------------------------------------

    /// Active side: answer a joiner's `JoinRequest` by snapshotting every
    /// live connection and announcing the count. Idempotent — a repeated
    /// request (lost snapshot or lost `JoinDone`) re-sends everything; the
    /// joiner skips keys it already installed.
    fn serve_join(&mut self, ctx: &mut NodeCtx<'_>, src: Ipv4Addr, session: u32) {
        // Only an active primary owns live connections a joiner can copy,
        // and only when re-integration is enabled on this pair.
        if !self.is_active() || !self.setup.sttcp.reintegrate {
            return;
        }
        let now = ctx.now();
        // Pool mode: assign the joiner a fresh rank behind every original
        // member (idempotent per join session), reset its member entry for
        // the new incarnation, and abandon any fence round against it.
        let mut new_rank = 0u8;
        let hb_timeout = self.setup.sttcp.hb_timeout();
        if let Some(pool) = &mut self.pool {
            if !pool.members.contains_key(&src) {
                return; // not a pool member; nothing to rejoin
            }
            match pool.last_session_served {
                Some((ip, s, r)) if ip == src && s == session => new_rank = r,
                _ => {
                    new_rank = pool.next_rank;
                    pool.next_rank = pool.next_rank.wrapping_add(1);
                    pool.last_session_served = Some((src, session, new_rank));
                    if let Some(m) = pool.members.get_mut(&src) {
                        m.reset_for_rejoin(hb_timeout, now);
                    }
                    if pool.fence.as_ref().is_some_and(|f| f.target == src) {
                        pool.fence = None;
                    }
                }
            }
        }
        if self.serving_join != Some(session) {
            self.serving_join = Some(session);
            // A new join session means the peer rebooted: everything known
            // about the old peer — including sticky FIN/watchdog flags that
            // would otherwise poison verdicts against the new incarnation —
            // is stale.
            self.peer_conns.clear();
            self.peer_app_suspected = false;
            self.peer_last_seqno = None;
            self.peer_seqno_advanced_at = now;
            self.byzantine_reported = false;
            // Delta mode: the old incarnation's acks are void — send
            // full-state frames until the joiner acknowledges, and track
            // its new links/epoch from scratch.
            self.peer_hb_acks = vec![0; self.hb_nlinks()];
            self.peer_ack_epoch = 0;
            self.rx_link_seq = vec![0; self.hb_nlinks()];
            self.rx_link_batch = vec![RxBatch::default(); self.hb_nlinks()];
            self.rx_peer_epoch = 0;
            self.events
                .push(StTcpEvent::ReintegrationStarted { at: now });
            ctx.trace(format!(
                "{}: serving re-integration join {session:08x}",
                self.role
            ));
            // Future connections get the extended receive buffer again:
            // once the join completes there is a backup to feed.
            let mut accept_tcp = self.setup.tcp.clone();
            accept_tcp.hold_buf = Some(self.setup.sttcp.hold_buf);
            self.tcp.listen(
                self.setup.service_port,
                ListenConfig {
                    tcp: accept_tcp,
                    egress: EgressMode::Normal,
                },
            );
        }
        let socks: Vec<SocketId> = self.conns.keys().copied().collect();
        let mut announced = 0u32;
        for sock in socks {
            // Arm the hold buffer *before* capturing the snapshot: every
            // client byte at or beyond the snapshot's receive edge stays
            // fetchable, so the joiner sees the stream with no hole —
            // `[read cursor, edge)` rides in the snapshot, `[edge, ∞)`
            // arrives by tap or fetch.
            if let Some(conn) = self.tcp.conn_mut(sock) {
                conn.enable_hold(self.setup.sttcp.hold_buf);
            }
            if let Some(ctl) = self.conns.get(&sock) {
                self.events.push(StTcpEvent::HoldArmed {
                    conn: ctl.key,
                    at: now,
                });
            }
            let Some(msg) = self.snapshot_conn(session, sock) else {
                continue;
            };
            announced += 1;
            self.send_ctrl_reply(ctx, src, &CtrlMsg::ConnSnapshot(msg));
        }
        self.send_ctrl_reply(
            ctx,
            src,
            &CtrlMsg::JoinDone {
                session,
                conns: announced,
                new_rank,
            },
        );
    }

    /// Captures one connection as a [`ConnSnapshotMsg`], or `None` when it
    /// cannot be joined (closed, not snapshottable, or a buffer exceeds the
    /// control-channel cap — such a connection simply stays unreplicated).
    fn snapshot_conn(&mut self, session: u32, sock: SocketId) -> Option<ConnSnapshotMsg> {
        let ctl = self.conns.get(&sock)?;
        if ctl.closed {
            return None;
        }
        let key = ctl.key;
        let snap = self.tcp.conn(sock)?.snapshot()?;
        if snap.unacked.len() > MAX_FETCH_DATA || snap.pending.len() > MAX_FETCH_DATA {
            return None;
        }
        let app_state = ctl
            .app
            .snapshot()
            .map(Bytes::from)
            .unwrap_or_else(Bytes::new);
        if app_state.len() > MAX_FETCH_DATA {
            return None;
        }
        Some(ConnSnapshotMsg {
            session,
            conn: key,
            client_ip: u32::from(snap.tuple.remote.0),
            client_port: snap.tuple.remote.1,
            iss: snap.iss.0,
            peer_isn: snap.peer_isn.0,
            snd_una: snap.snd_una,
            rcv_start: snap.rcv_start,
            fin_offset: snap.fin_offset,
            local_fin: snap.local_fin,
            peer_fin_consumed: snap.peer_fin_consumed,
            app_digest: ctl.app.state_digest(),
            unacked: snap.unacked,
            pending: snap.pending,
            app_state,
        })
    }

    /// Joiner side: install one connection snapshot into the suppressed
    /// TCP state machine and spin up its replica application.
    fn install_snapshot(&mut self, ctx: &mut NodeCtx<'_>, s: &ConnSnapshotMsg) {
        let now = ctx.now();
        let Some(join) = &self.join else {
            return;
        };
        if s.session != join.session || join.installed.contains(&s.conn) {
            return;
        }
        let tuple = FourTuple {
            local: (self.setup.service_ip, self.setup.service_port),
            remote: (Ipv4Addr::from(s.client_ip), s.client_port),
        };
        if conn_key(tuple) != s.conn {
            // CRC passed but the key does not match the tuple: semantic
            // corruption; never install it.
            return;
        }
        // Restore the replica application first and verify lockstep
        // *before* touching transport state: a replica whose digest
        // diverges from the active side would silently produce different
        // output at the next takeover — worse than leaving the connection
        // unreplicated.
        let mut app = self.app_factory.create();
        if !s.app_state.is_empty() {
            app.restore(&s.app_state);
        }
        if app.state_digest() != s.app_digest {
            ctx.trace(format!(
                "join: conn {:08x} replica digest mismatch after restore; skipping",
                s.conn
            ));
            return;
        }
        let conn = TcpConn::resume(
            self.setup.tcp.clone(),
            &TcpSnapshot {
                tuple,
                iss: SeqNum(s.iss),
                peer_isn: SeqNum(s.peer_isn),
                snd_una: s.snd_una,
                unacked: s.unacked.clone(),
                local_fin: s.local_fin,
                rcv_start: s.rcv_start,
                pending: s.pending.clone(),
                fin_offset: s.fin_offset,
                peer_fin_consumed: s.peer_fin_consumed,
            },
        );
        match self.tcp.install_resumed(conn, EgressMode::Suppress) {
            Some(sock) => {
                self.by_key.insert(s.conn, sock);
                self.conns.insert(
                    sock,
                    ConnCtl {
                        key: s.conn,
                        app,
                        app_alive: !self.app_crashed,
                        applag: AppLagDetector::new(
                            self.setup.sttcp.app_max_lag_bytes,
                            self.setup.sttcp.app_max_lag_time,
                            self.setup.sttcp.effective_lag_confirm(),
                        ),
                        finarb: FinArbiter::new(self.role, self.setup.sttcp.max_delay_fin),
                        pending_out: Vec::new(),
                        last_fetch_at: None,
                        recovering: false,
                        closed: false,
                        close_issued: s.local_fin,
                        hole_since: None,
                        last_sign_of_life: now,
                        // The connection resumed mid-stream: its first
                        // byte was delivered on the active side long ago.
                        saw_data: true,
                    },
                );
                self.refresh_tick(sock);
                self.check_socks.insert(sock);
                self.events.push(StTcpEvent::SnapshotInstalled {
                    conn: s.conn,
                    at: now,
                });
                ctx.trace(format!(
                    "join: conn {:08x} snapshot installed (rcv {}, snd_una {})",
                    s.conn, s.rcv_start, s.snd_una
                ));
            }
            None => {
                // The tuple is already live locally: the tapped SYN beat the
                // snapshot here, so the connection is replicated from its
                // very beginning and the snapshot is redundant.
            }
        }
        if let Some(join) = &mut self.join {
            join.installed.insert(s.conn);
        }
    }

    /// Joiner side: complete the join once all announced snapshots are in
    /// and the local tap has converged with the active peer's heartbeat
    /// positions. Until then `ft_mode` stays false — the joiner can neither
    /// fire verdicts nor take over, so a half-joined backup can never
    /// become a second active server.
    fn try_finish_join(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(join) = &self.join else {
            return;
        };
        let Some(expected) = join.expected else {
            return;
        };
        if (join.installed.len() as u32) < expected {
            return;
        }
        // Require at least one post-reboot heartbeat: convergence is judged
        // against the peer's positions, which are meaningless before any
        // have been heard. Pool mode hears peers through member monitors.
        let heard = match &self.pool {
            Some(pool) => pool
                .members
                .values()
                .any(|m| m.ip_mon.last_rx().is_some() || m.serial_mon.last_rx().is_some()),
            None => self.ip_mon.last_rx().is_some() || self.serial_mon.last_rx().is_some(),
        };
        if !heard {
            return;
        }
        // Converged when every connection the peer reports exists locally
        // with receive and application-read positions caught up (a closed
        // local connection has nothing left to converge).
        for (&key, peer) in &self.peer_conns {
            let Some(&sock) = self.by_key.get(&key) else {
                // Heartbeats announce every conn still in the peer's socket
                // table, including closed ones the snapshot pass skipped —
                // those have nothing to converge. Only a key we actually
                // installed may gate convergence (it can lag `by_key` by one
                // poll when the tuple arrived via tap); a brand-new conn is
                // tapped from its SYN and needs no catch-up.
                if join.installed.contains(&key) {
                    return;
                }
                continue;
            };
            if self.conns.get(&sock).map(|c| c.closed).unwrap_or(true) {
                continue;
            }
            let Some(conn) = self.tcp.conn(sock) else {
                continue;
            };
            if conn.bytes_received() < peer.last_byte_received
                || conn.app_bytes_read() < peer.last_app_byte_read
            {
                return;
            }
        }
        let now = ctx.now();
        let session = join.session;
        self.join = None;
        self.ft_mode = true;
        self.peer_alive = true;
        // Detectors resume against a fresh peer: give every connection one
        // evaluation so first-observation baselines are established.
        self.check_socks.extend(self.conns.keys().copied());
        self.events
            .push(StTcpEvent::ReintegrationCompleted { at: now });
        ctx.trace(format!(
            "{}: re-integration complete; pair fault-tolerant again",
            self.role
        ));
        self.send_ctrl(ctx, &CtrlMsg::JoinComplete { session });
    }

    /// Sends a control message to one address, over IP and — pool mode,
    /// when wired — the matching serial link, so fence votes survive an
    /// IP partition exactly like heartbeats do.
    fn send_ctrl_to(
        &self,
        ctx: &mut NodeCtx<'_>,
        ip: Ipv4Addr,
        port: Option<SerialPortId>,
        msg: &CtrlMsg,
    ) {
        let wire = msg.encode();
        if let Some(frame) = self.iface.frame_to(ip, CTRL_PROTO, wire.clone()) {
            ctx.send_frame(self.iface.nic, frame);
        }
        if let Some(port) = port {
            ctx.send_serial(port, wire);
        }
    }

    /// Replies to the sender of a control message.
    fn send_ctrl_reply(&self, ctx: &mut NodeCtx<'_>, src: Ipv4Addr, msg: &CtrlMsg) {
        match &self.pool {
            Some(pool) => {
                let port = pool.members.get(&src).and_then(|m| m.serial_port);
                self.send_ctrl_to(ctx, src, port, msg);
            }
            None => self.send_ctrl(ctx, msg),
        }
    }

    /// Sends a control message toward the active server: the single peer
    /// in pair mode, the believed-active member in pool mode (broadcast
    /// to every member while no active is known — e.g. a joiner probing
    /// mid-takeover).
    fn send_ctrl(&self, ctx: &mut NodeCtx<'_>, msg: &CtrlMsg) {
        if let Some(pool) = &self.pool {
            // A joiner's rebuilt pool view may still believe a dead member
            // active, so it broadcasts until the join completes; only the
            // active side answers a JoinRequest anyway.
            match pool.active_ip() {
                Some(ip) if self.join.is_none() => {
                    let port = pool.members.get(&ip).and_then(|m| m.serial_port);
                    self.send_ctrl_to(ctx, ip, port, msg);
                }
                _ => {
                    for (&ip, m) in &pool.members {
                        if !m.fenced {
                            self.send_ctrl_to(ctx, ip, m.serial_port, msg);
                        }
                    }
                }
            }
            return;
        }
        if let Some(frame) =
            self.iface
                .frame_to(self.setup.peer_private_ip, CTRL_PROTO, msg.encode())
        {
            ctx.send_frame(self.iface.nic, frame);
        }
    }

    /// Sends a per-connection control message (fetch traffic) toward the
    /// peer, shard-aware: the IP path always carries it, and when the IP
    /// heartbeat link is down in a multi-link pair, the connection's shard
    /// serial link carries a redundant copy so recovery survives an IP
    /// partition without flooding every serial line.
    fn send_ctrl_conn(&self, ctx: &mut NodeCtx<'_>, key: u32, msg: &CtrlMsg) {
        self.send_ctrl(ctx, msg);
        if self.pool.is_some() || self.extra_serial_ports.is_empty() {
            return;
        }
        if self.ip_mon.is_alive(ctx.now()) {
            return;
        }
        let port = match self.shard_of(key) {
            0 => self.serial_port,
            s => self.extra_serial_ports[s - 1],
        };
        ctx.send_serial(port, msg.encode());
    }

    fn handle_ctrl(&mut self, ctx: &mut NodeCtx<'_>, src: Ipv4Addr, msg: &CtrlMsg) {
        let now = ctx.now();
        match msg {
            CtrlMsg::FetchRequest { conn, from, max } => {
                let Some(&sock) = self.by_key.get(conn) else {
                    return;
                };
                let data = self
                    .tcp
                    .conn(sock)
                    .and_then(|c| c.fetch_held(*from, *max as usize))
                    .unwrap_or_default();
                self.metrics.on_fetch_served(data.len() as u64);
                let reply = CtrlMsg::FetchReply {
                    conn: *conn,
                    from: *from,
                    data,
                };
                self.send_ctrl_reply(ctx, src, &reply);
            }
            CtrlMsg::FetchReply { conn, from, data } => {
                if data.is_empty() {
                    return;
                }
                let Some(&sock) = self.by_key.get(conn) else {
                    return;
                };
                self.tcp.inject_in_order(sock, *from, data);
                self.metrics.on_replay(data.len() as u64);
            }
            CtrlMsg::JoinRequest { session } => {
                self.serve_join(ctx, src, *session);
            }
            CtrlMsg::ConnSnapshot(s) => {
                self.install_snapshot(ctx, s);
            }
            CtrlMsg::JoinDone {
                session,
                conns,
                new_rank,
            } => {
                if let Some(join) = &mut self.join {
                    if join.session == *session {
                        join.expected = Some(*conns);
                        // Pool: the active assigned this joiner a fresh
                        // rank behind every original member. Announcing it
                        // in our heartbeats is what un-fences us everywhere.
                        if let Some(pool) = &mut self.pool {
                            pool.my_rank = *new_rank;
                        }
                    }
                }
                self.try_finish_join(ctx);
            }
            CtrlMsg::FenceRequest {
                epoch,
                target_rank,
                candidate_rank,
            } => {
                ctx.profile_enter(Component::Pool);
                self.handle_fence_request(ctx, src, *epoch, *target_rank, *candidate_rank);
                ctx.profile_exit();
            }
            CtrlMsg::FenceAck {
                epoch,
                target_rank,
                voter_rank,
                granted,
            } => {
                ctx.profile_enter(Component::Pool);
                self.handle_fence_ack(ctx, *epoch, *target_rank, *voter_rank, *granted);
                ctx.profile_exit();
            }
            CtrlMsg::FenceCommit { epoch, target_rank } => {
                ctx.flight(
                    SpanId::fence(u64::from(*epoch), *target_rank),
                    SpanId::NONE,
                    FlightKind::FenceCommit {
                        epoch: u64::from(*epoch),
                        target_rank: *target_rank,
                    },
                );
                ctx.profile_enter(Component::Pool);
                self.handle_fence_commit(ctx, *target_rank);
                ctx.profile_exit();
            }
            CtrlMsg::JoinComplete { session } => {
                if self.serving_join == Some(*session) {
                    self.serving_join = None;
                    self.ft_mode = true;
                    self.peer_alive = true;
                    self.check_socks.extend(self.conns.keys().copied());
                    self.events
                        .push(StTcpEvent::ReintegrationCompleted { at: now });
                    ctx.trace(format!(
                        "{}: re-integration complete; pair fault-tolerant again",
                        self.role
                    ));
                    // Fresh FIN arbitration against the new backup: the old
                    // arbiters are in their peer-failed (open-gate) state
                    // from the takeover.
                    for ctl in self.conns.values_mut() {
                        if !ctl.close_issued && !ctl.closed {
                            ctl.finarb = FinArbiter::new(self.role, self.setup.sttcp.max_delay_fin);
                        }
                    }
                }
            }
        }
    }

    // ----- internal: I/O plumbing ---------------------------------------------

    fn flush(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        ctx.profile_enter(Component::Tcp);
        loop {
            let had_events = self.drain_tcp_events(now);
            // Acknowledgments may have freed send-buffer space: drain any
            // application output that was blocked on it.
            let blocked: Vec<SocketId> = self.out_blocked.iter().copied().collect();
            for sock in blocked {
                self.flush_pending(now, sock);
            }
            ctx.profile_enter(Component::TcpPoll);
            let pkts = self.tcp.poll_packets(now);
            ctx.profile_exit();
            if !had_events && pkts.is_empty() {
                break;
            }
            for pkt in pkts {
                if pkt.proto == IpProto::Tcp {
                    if let Some(h) = peek_segment(&pkt.payload) {
                        let span = SpanId::segment(h.src_port, h.dst_port, h.seq, h.flags);
                        if h.is_pure_ack() {
                            ctx.flight(
                                span,
                                SpanId::NONE,
                                FlightKind::SegAck {
                                    conn: h.conn_tag(),
                                    ack: h.ack,
                                },
                            );
                        } else {
                            ctx.flight(
                                span,
                                SpanId::NONE,
                                FlightKind::SegSend {
                                    conn: h.conn_tag(),
                                    seq: h.seq,
                                    len: h.data_len,
                                    flags: h.flags,
                                },
                            );
                        }
                    }
                }
                if let Some(frame) = self.iface.encap(&pkt) {
                    ctx.send_frame(self.iface.nic, frame);
                }
            }
        }
        ctx.profile_exit();
        // Re-arm the TCP deadline timer if it moved. The deadline query
        // is where the timer wheel does its per-flush work (syncing
        // dirty socket deadlines, scanning occupied slots), so it is
        // attributed to the wheel bucket alongside due-timer dispatch.
        ctx.profile_enter(Component::TcpWheel);
        let want = self.tcp.next_deadline();
        ctx.profile_exit();
        match (want, self.tcp_timer) {
            (Some(d), Some((_, at))) if d == at => {}
            (Some(d), prev) => {
                if let Some((id, _)) = prev {
                    ctx.cancel_timer(id);
                }
                let delay = d.saturating_since(now);
                let id = ctx.set_timer(delay, TOKEN_TCP);
                self.tcp_timer = Some((id, d));
            }
            (None, Some((id, _))) => {
                ctx.cancel_timer(id);
                self.tcp_timer = None;
            }
            (None, None) => {}
        }
    }

    fn handle_ip_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Ipv4Packet) {
        let now = ctx.now();
        match pkt.proto {
            IpProto::Icmp => {
                if let Some((id, seq)) = self.iface.handle_icmp(ctx, pkt) {
                    if self.ping.active && id == self.ping.id && Some(seq) == self.ping.awaiting {
                        self.ping.awaiting = None;
                        self.ping.consecutive_failures = 0;
                    }
                }
            }
            IpProto::Heartbeat if pkt.dst == self.setup.private_ip => {
                if let Ok(any) = decode_any(&pkt.payload) {
                    let hb = match &any {
                        AnyHb::V1(hb) => hb,
                        AnyHb::V2(f) => &f.hb,
                    };
                    let span = SpanId::heartbeat(role_byte(hb.role), hb.rank, hb.seqno);
                    ctx.flight(
                        span,
                        SpanId::NONE,
                        FlightKind::HbRecv {
                            seqno: hb.seqno,
                            link: 0,
                        },
                    );
                    self.last_hb_rx_span = span;
                    match &any {
                        AnyHb::V1(hb) if self.pool.is_some() => {
                            ctx.profile_enter(Component::Pool);
                            self.pool_handle_heartbeat(now, hb, HbLink::Ip, pkt.src);
                            ctx.profile_exit();
                        }
                        AnyHb::V1(hb) => self.handle_heartbeat(now, hb, HbLink::Ip),
                        // Pool members never speak v2; a v2 frame in pool
                        // mode is dropped rather than misapplied.
                        AnyHb::V2(_) if self.pool.is_some() => {}
                        AnyHb::V2(f) => self.handle_heartbeat_v2(now, f, 0),
                    }
                }
            }
            p if p == CTRL_PROTO && pkt.dst == self.setup.private_ip => {
                if let Ok(msg) = CtrlMsg::decode(&pkt.payload) {
                    self.handle_ctrl(ctx, pkt.src, &msg);
                }
            }
            IpProto::Tcp
                if pkt.dst == self.setup.service_ip || pkt.dst == self.setup.private_ip =>
            {
                if let Some(h) = peek_segment(&pkt.payload) {
                    let span = SpanId::segment(h.src_port, h.dst_port, h.seq, h.flags);
                    if h.is_pure_ack() {
                        ctx.flight(
                            span,
                            SpanId::NONE,
                            FlightKind::SegAck {
                                conn: h.conn_tag(),
                                ack: h.ack,
                            },
                        );
                    } else {
                        ctx.flight(
                            span,
                            SpanId::NONE,
                            FlightKind::SegDeliver {
                                conn: h.conn_tag(),
                                seq: h.seq,
                                len: h.data_len,
                                flags: h.flags,
                            },
                        );
                    }
                }
                ctx.profile_enter(Component::Tcp);
                self.tcp.on_packet(now, pkt);
                ctx.profile_exit();
            }
            _ => {}
        }
    }
}

impl Node for StTcpServer {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        self.started_at = now;
        let hb_timeout = self.setup.sttcp.hb_timeout();
        self.ip_mon = LinkMonitor::new(hb_timeout, now);
        self.serial_mon = LinkMonitor::new(hb_timeout, now);
        self.serial_link_mons = (0..1 + self.extra_serial_ports.len())
            .map(|_| LinkMonitor::new(hb_timeout, now))
            .collect();
        self.hb_epoch = epoch_from(now);
        self.rx_link_seq = vec![0; self.hb_nlinks()];
        self.rx_link_batch = vec![RxBatch::default(); self.hb_nlinks()];
        self.peer_hb_acks = vec![0; self.hb_nlinks()];
        // Pool members get the same startup grace, anchored at boot.
        if let Some(pool) = &mut self.pool {
            for m in pool.members.values_mut() {
                m.ip_mon = LinkMonitor::new(hb_timeout, now);
                m.serial_mon = LinkMonitor::new(hb_timeout, now);
            }
        }

        // The primary's accepted connections carry the extended receive
        // buffer; the backup accepts in suppressed mode.
        let mut accept_tcp = self.setup.tcp.clone();
        let egress = match self.role {
            Role::Primary => {
                accept_tcp.hold_buf = Some(self.setup.sttcp.hold_buf);
                EgressMode::Normal
            }
            Role::Backup => EgressMode::Suppress,
        };
        self.tcp.listen(
            self.setup.service_port,
            ListenConfig {
                tcp: accept_tcp,
                egress,
            },
        );

        self.send_heartbeats(ctx);
        ctx.set_timer(self.setup.sttcp.hb_period, TOKEN_HB);
        ctx.set_timer(self.setup.sttcp.check_period, TOKEN_CHECK);
        ctx.set_timer(self.setup.sttcp.app_tick, TOKEN_APP_TICK);
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, _nic: NicId, frame: EthernetFrame) {
        if self.cold {
            return;
        }
        if let Some(pkt) = IpInterface::decap(&frame) {
            self.handle_ip_packet(ctx, &pkt);
        }
        self.flush(ctx);
    }

    fn on_serial(&mut self, ctx: &mut NodeCtx<'_>, port: SerialPortId, data: Bytes) {
        if self.cold {
            return;
        }
        let now = ctx.now();
        // Pool mode maps the port to the member on the other end and also
        // carries control traffic (fence votes) over serial; the CRC in
        // each format keeps the two decodes from colliding.
        if let Some(ip) = self
            .pool
            .as_ref()
            .and_then(|p| p.serial_by_port.get(&port).copied())
        {
            if let Ok(hb) = HbPayload::decode(&data) {
                let span = SpanId::heartbeat(role_byte(hb.role), hb.rank, hb.seqno);
                ctx.flight(
                    span,
                    SpanId::NONE,
                    FlightKind::HbRecv {
                        seqno: hb.seqno,
                        link: 1,
                    },
                );
                self.last_hb_rx_span = span;
                ctx.profile_enter(Component::Pool);
                self.pool_handle_heartbeat(now, &hb, HbLink::Serial, ip);
                ctx.profile_exit();
            } else if let Ok(msg) = CtrlMsg::decode(&data) {
                self.handle_ctrl(ctx, ip, &msg);
            }
        } else if let Ok(any) = decode_any(&data) {
            // Pair mode: serial link index 0 is `serial_port`, further
            // links follow `extra_serial_ports` order.
            let link_ix = match port == self.serial_port {
                true => 0,
                false => match self.extra_serial_ports.iter().position(|&p| p == port) {
                    Some(i) => 1 + i,
                    None => 0,
                },
            };
            let hb = match &any {
                AnyHb::V1(hb) => hb,
                AnyHb::V2(f) => &f.hb,
            };
            let span = SpanId::heartbeat(role_byte(hb.role), hb.rank, hb.seqno);
            ctx.flight(
                span,
                SpanId::NONE,
                FlightKind::HbRecv {
                    seqno: hb.seqno,
                    link: (1 + link_ix) as u8,
                },
            );
            self.last_hb_rx_span = span;
            match &any {
                AnyHb::V1(hb) => self.handle_heartbeat(now, hb, HbLink::Serial),
                AnyHb::V2(f) => self.handle_heartbeat_v2(now, f, 1 + link_ix),
            }
        } else if let Ok(msg) = CtrlMsg::decode(&data) {
            // Pair mode carries shard-routed fetch requests over serial
            // when the IP link is down; the CRC in each format keeps the
            // decodes from colliding.
            self.handle_ctrl(ctx, self.setup.peer_private_ip, &msg);
        }
        self.flush(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        if self.cold {
            return;
        }
        match token {
            TOKEN_HB => {
                // Heartbeats also flow during a re-integration join: the
                // joiner's positions drive the active side's hold-buffer
                // release, and the active side's positions define the
                // joiner's convergence target. Pool members heartbeat for
                // as long as they are powered on — per-member liveness is
                // the fencing evidence.
                if self.pool.is_some()
                    || self.ft_mode
                    || self.join.is_some()
                    || self.serving_join.is_some()
                {
                    ctx.profile_enter(Component::HbEncode);
                    self.send_heartbeats(ctx);
                    ctx.profile_exit();
                }
                // A joiner re-requests until the full snapshot set arrives
                // (any of the join messages may have been lost).
                if let Some(join) = &self.join {
                    let complete = join
                        .expected
                        .is_some_and(|e| join.installed.len() as u32 >= e);
                    if !complete {
                        let session = join.session;
                        self.send_ctrl(ctx, &CtrlMsg::JoinRequest { session });
                    }
                }
                ctx.set_timer(self.setup.sttcp.hb_period, TOKEN_HB);
            }
            TOKEN_CHECK => {
                self.run_checks(ctx);
                // Opportunistically drain app output that was blocked on a
                // full send buffer.
                let now = ctx.now();
                let socks: Vec<SocketId> = self.out_blocked.iter().copied().collect();
                for sock in socks {
                    self.flush_pending(now, sock);
                }
                ctx.set_timer(self.setup.sttcp.check_period, TOKEN_CHECK);
            }
            TOKEN_TCP => {
                self.tcp_timer = None;
                ctx.profile_enter(Component::TcpWheel);
                self.tcp.on_time(ctx.now());
                ctx.profile_exit();
            }
            TOKEN_APP_TICK => {
                let now = ctx.now();
                // The watchdog is the one consumer that needs every live
                // application's sign of life refreshed each tick; with it
                // off, only applications that asked for ticks are visited,
                // so idle connections cost nothing per round.
                let socks: Vec<SocketId> = if self.setup.sttcp.watchdog_timeout.is_some() {
                    self.conns.keys().copied().collect()
                } else {
                    self.tick_socks.iter().copied().collect()
                };
                for sock in socks {
                    let actions = match self.conns.get_mut(&sock) {
                        Some(ctl) if ctl.app_alive && !ctl.closed => ctl.app.on_tick(now),
                        _ => {
                            self.tick_socks.remove(&sock);
                            continue;
                        }
                    };
                    self.touch_sign_of_life(now, sock);
                    self.apply_app_actions(now, sock, actions);
                }
                ctx.set_timer(self.setup.sttcp.app_tick, TOKEN_APP_TICK);
            }
            TOKEN_PING if self.ping.active => {
                if self.ping.awaiting.is_some() {
                    self.ping.consecutive_failures += 1;
                }
                self.ping.seq = self.ping.seq.wrapping_add(1);
                self.ping.attempts += 1;
                self.ping.awaiting = Some(self.ping.seq);
                let _ =
                    self.iface
                        .send_ping(ctx, self.setup.gateway_ip, self.ping.id, self.ping.seq);
                ctx.set_timer(self.setup.sttcp.ping_interval, TOKEN_PING);
            }
            TOKEN_TAKEOVER => {
                self.complete_takeover(ctx);
            }
            _ => {}
        }
        self.flush(ctx);
    }

    fn on_power_off(&mut self) {
        self.powered_off = true;
    }

    fn on_power_on(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.setup.sttcp.reintegrate {
            // Cold reboot after a crash or STONITH. All in-memory protocol
            // state — connection table, sequence numbers, peer bookkeeping —
            // is gone, and rejoining the pair safely would need the state
            // transfer the paper assigns to an administrator. Until then the
            // machine is a passive cold standby: it never transmits and
            // ignores every frame, serial byte, and timer. In particular a
            // STONITHed ex-primary can never come back as a second active
            // server, so the dual-active invariant holds across reboots.
            self.cold = true;
            self.ft_mode = false;
            self.peer_alive = false;
            self.took_over = false;
            self.conns.clear();
            self.by_key.clear();
            self.peer_conns.clear();
            self.peer_app_suspected = false;
            self.peer_ping = None;
            self.ping.active = false;
            self.tcp_timer = None;
            self.peer_last_seqno = None;
            self.peer_seqno_advanced_at = ctx.now();
            self.byzantine_reported = false;
            self.byz_mode = None;
            ctx.trace(format!(
                "{}: cold reboot; staying passive standby",
                self.setup.role
            ));
            return;
        }
        // Warm reboot into re-integration. All pre-crash state is gone;
        // boot as a fresh backup — whatever role this host held before —
        // and ask the active peer for per-connection snapshots. Until the
        // join converges, `ft_mode` stays false: this node fires no
        // verdicts and can never take over, so the dual-active invariant
        // holds even if the join never completes (or the active peer
        // STONITHs us mid-join after a fast reboot — that race resolves
        // exactly like the crash it followed).
        let now = ctx.now();
        self.cold = false;
        self.powered_off = false;
        self.role = Role::Backup;
        self.ft_mode = false;
        self.peer_alive = true;
        self.took_over = false;
        self.app_crashed = false;
        self.conns.clear();
        self.by_key.clear();
        self.peer_conns.clear();
        self.peer_app_suspected = false;
        self.peer_ping = None;
        self.ping = PingCampaign {
            id: (self.setup.seed & 0xffff) as u16,
            ..Default::default()
        };
        self.net_detect.reset();
        self.hb_seq = 0;
        self.hb_scratch = Vec::new();
        self.tcp_timer = None;
        self.peer_last_seqno = None;
        self.peer_seqno_advanced_at = now;
        self.byzantine_reported = false;
        self.byz_mode = None;
        // Delta mode: a fresh boot incarnation — the peer's receivers see
        // the epoch change and reset their side; ours starts empty.
        self.hb_epoch = epoch_from(now);
        self.hb_cache.clear();
        self.peer_hb_acks = vec![0; self.hb_nlinks()];
        self.peer_ack_epoch = 0;
        self.rx_link_seq = vec![0; self.hb_nlinks()];
        self.rx_link_batch = vec![RxBatch::default(); self.hb_nlinks()];
        self.rx_peer_epoch = 0;
        let hb_timeout = self.setup.sttcp.hb_timeout();
        self.ip_mon = LinkMonitor::new(hb_timeout, now);
        self.serial_mon = LinkMonitor::new(hb_timeout, now);
        self.serial_link_mons = (0..1 + self.extra_serial_ports.len())
            .map(|_| LinkMonitor::new(hb_timeout, now))
            .collect();
        // Pool: rebuild the member view from scratch (everything pre-crash
        // is stale), keeping only the physical serial wiring. This boots
        // with the static rank; `JoinDone` hands over the fresh one.
        if self.pool.is_some() {
            let mut fresh = PoolState::new(self.setup.rank, &self.setup.pool, hb_timeout, now);
            if let Some(old) = &self.pool {
                fresh.serial_by_port = old.serial_by_port.clone();
            }
            let wiring: Vec<(SerialPortId, Ipv4Addr)> = fresh
                .serial_by_port
                .iter()
                .map(|(&port, &ip)| (port, ip))
                .collect();
            for (port, ip) in wiring {
                if let Some(m) = fresh.members.get_mut(&ip) {
                    m.serial_port = Some(port);
                }
            }
            self.pool = Some(fresh);
        }
        self.ip_was_alive = true;
        self.serial_was_alive = true;
        self.started_at = now;
        // A fresh TCP stack tapping in suppressed mode with the shared
        // deterministic ISN, exactly like an original backup: connections
        // opened after the reboot replicate from their SYN; pre-existing
        // ones arrive as snapshots.
        self.tcp = TcpEndpoint::new(EndpointConfig {
            tcp: self.setup.tcp.clone(),
            isn: IsnPolicy::Deterministic {
                salt: self.setup.isn_salt,
            },
            rst_policy: RstPolicy::Silent,
            seed: self.setup.seed,
        });
        self.tcp.listen(
            self.setup.service_port,
            ListenConfig {
                tcp: self.setup.tcp.clone(),
                egress: EgressMode::Suppress,
            },
        );
        // Session nonce: unique per boot (virtual boot time), never zero.
        let session = (now.as_micros() as u32) | 1;
        self.join = Some(JoinState {
            session,
            expected: None,
            installed: BTreeSet::new(),
        });
        self.serving_join = None;
        self.events
            .push(StTcpEvent::ReintegrationStarted { at: now });
        ctx.trace(format!(
            "{}: reboot; joining active peer (session {session:08x})",
            self.setup.role
        ));
        self.send_ctrl(ctx, &CtrlMsg::JoinRequest { session });
        self.send_heartbeats(ctx);
        // The power-off invalidated every pending timer (epoch bump); arm
        // a fresh set.
        ctx.set_timer(self.setup.sttcp.hb_period, TOKEN_HB);
        ctx.set_timer(self.setup.sttcp.check_period, TOKEN_CHECK);
        ctx.set_timer(self.setup.sttcp.app_tick, TOKEN_APP_TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use simnet::mac::MacAddr;

    fn setup(role: Role) -> ServerSetup {
        ServerSetup {
            role,
            sttcp: StTcpConfig::default(),
            tcp: TcpConfig::default(),
            service_ip: Ipv4Addr::new(10, 0, 0, 100),
            service_port: 80,
            private_ip: Ipv4Addr::new(10, 0, 0, 2),
            peer_private_ip: Ipv4Addr::new(10, 0, 0, 3),
            peer_node: NodeId(9),
            gateway_ip: Ipv4Addr::new(10, 0, 0, 1),
            isn_salt: 42,
            seed: 7,
            rank: 0,
            pool: Vec::new(),
        }
    }

    fn server(role: Role) -> StTcpServer {
        let s = setup(role);
        let mut iface = IpInterface::new(NicId(0), MacAddr::unicast(2), s.private_ip);
        iface.add_alias(s.service_ip);
        iface.add_arp(s.peer_private_ip, MacAddr::unicast(3));
        iface.add_arp(s.gateway_ip, MacAddr::unicast(1));
        StTcpServer::new(
            s,
            iface,
            Box::new(|| Box::new(EchoApp::default()) as Box<dyn Application>),
        )
    }

    #[test]
    fn constructs_with_expected_initial_state() {
        let s = server(Role::Backup);
        assert_eq!(s.role(), Role::Backup);
        assert!(s.ft_mode());
        assert!(s.events().is_empty());
        assert_eq!(s.took_over_at(), None);
        assert!(s.conn_keys().is_empty());
        assert!(!s.was_powered_off());
        assert!(format!("{s:?}").contains("backup") || format!("{s:?}").contains("Backup"));
    }

    #[test]
    fn heartbeat_payload_reflects_role_and_ping_state() {
        let mut s = server(Role::Primary);
        let hb = s.build_heartbeat(SimTime::ZERO);
        assert_eq!(hb.role, Role::Primary);
        assert!(hb.conns.is_empty());
        assert_eq!(hb.ping, None);
        s.ping.active = true;
        s.ping.consecutive_failures = 2;
        let hb2 = s.build_heartbeat(SimTime::ZERO);
        assert_eq!(hb2.ping.unwrap().consecutive_failures, 2);
    }

    #[test]
    fn handle_heartbeat_updates_monitors_and_peer_state() {
        let mut s = server(Role::Primary);
        let t = SimTime::from_millis(100);
        let hb = HbPayload {
            seqno: 1,
            role: Role::Backup,
            rank: 1,
            conns: vec![ConnHb {
                key: 0xabc,
                last_byte_received: 1_000,
                last_ack_received: 900,
                last_app_byte_written: 800,
                last_app_byte_read: 950,
                fin_generated: false,
                rst_generated: false,
                app_suspected: false,
            }],
            ping: None,
        };
        s.handle_heartbeat(t, &hb, HbLink::Serial);
        assert_eq!(s.serial_mon.last_rx(), Some(t));
        assert_eq!(s.ip_mon.last_rx(), None);
        let p = s.peer_conns.get(&0xabc).unwrap();
        assert_eq!(p.last_byte_received, 1_000);
        assert_eq!(p.last_app_byte_read, 950);
    }

    #[test]
    fn peer_fin_flag_is_sticky() {
        let mut s = server(Role::Primary);
        let hb_fin = HbPayload {
            seqno: 1,
            role: Role::Backup,
            rank: 1,
            conns: vec![ConnHb {
                key: 1,
                fin_generated: true,
                ..Default::default()
            }],
            ping: None,
        };
        let hb_nofin = HbPayload {
            seqno: 2,
            role: Role::Backup,
            rank: 1,
            conns: vec![ConnHb {
                key: 1,
                ..Default::default()
            }],
            ping: None,
        };
        s.handle_heartbeat(SimTime::from_millis(1), &hb_fin, HbLink::Ip);
        s.handle_heartbeat(SimTime::from_millis(2), &hb_nofin, HbLink::Ip);
        assert!(s.peer_conns.get(&1).unwrap().fin_or_rst);
    }
}
