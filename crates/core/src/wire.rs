//! Shared wire-format helpers for the ST-TCP control protocols.
//!
//! Both heartbeats and recovery control messages travel over channels the
//! chaos engine can corrupt in flight (a flipped bit on a flaky switch
//! port or serial cable). TCP segments are already protected by the
//! internet checksum; the ST-TCP control formats carry their own CRC-32
//! so a corrupted message is *dropped like a lost one* rather than acted
//! on — acting on a corrupted heartbeat could trigger a spurious
//! failover or, worse, a spurious STONITH.

/// The byte-at-a-time CRC-32 lookup table, built at compile time.
///
/// Heartbeats are encoded and decoded on every period for every
/// connection, so the CRC sits on the simulator's hot path; the table
/// turns 8 branchy shifts per byte into one lookup.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

/// An incremental CRC-32, for checksumming a message in pieces (e.g.
/// verifying a heartbeat with its on-wire CRC field treated as zero,
/// without copying the frame into a scratch buffer first).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh CRC state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Folds `data` into the CRC.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The final CRC value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// Reads a big-endian `u32` at `pos`, or `None` when fewer than four
/// bytes remain. Total: never panics, any input, any position.
///
/// Decoders use this instead of direct indexing so a missing or wrong
/// length precondition degrades into a decode error instead of a panic —
/// the control channels carry attacker-grade garbage under chaos, and a
/// panic in a decoder turns bit rot into a crashed server.
pub fn read_u32_at(wire: &[u8], pos: usize) -> Option<u32> {
    let bytes = wire.get(pos..pos.checked_add(4)?)?;
    Some(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

/// Reads a big-endian `u64` at `pos`, or `None` when fewer than eight
/// bytes remain. Total like [`read_u32_at`].
pub fn read_u64_at(wire: &[u8], pos: usize) -> Option<u64> {
    let bytes = wire.get(pos..pos.checked_add(8)?)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(bytes);
    Some(u64::from_be_bytes(buf))
}

/// Splits a message framed as `body ‖ crc32(body):4` into
/// `(body, stored_crc)`, or `None` when the frame cannot even hold the
/// CRC tail plus `min_body` bytes of payload. Total: never panics.
pub fn split_crc_tail(wire: &[u8], min_body: usize) -> Option<(&[u8], u32)> {
    let body_len = wire.len().checked_sub(4)?;
    if body_len < min_body {
        return None;
    }
    let (body, tail) = wire.split_at(body_len);
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(tail);
    Some((body, u32::from_be_bytes(crc_bytes)))
}

/// [`split_crc_tail`] plus the CRC check: returns the body only when the
/// stored tail matches `crc32(body)`.
pub fn checked_crc_frame(wire: &[u8], min_body: usize) -> Option<&[u8]> {
    let (body, stored) = split_crc_tail(wire, min_body)?;
    (crc32(body) == stored).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0u16..97)
            .map(|i| (i.wrapping_mul(131) >> 2) as u8)
            .collect();
        let whole = crc32(&data);
        for split in 0..=data.len() {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn reads_are_total_at_every_position() {
        let data: Vec<u8> = (0u8..32).collect();
        for pos in 0..=data.len() + 8 {
            let r32 = read_u32_at(&data, pos);
            let r64 = read_u64_at(&data, pos);
            assert_eq!(r32.is_some(), pos + 4 <= data.len(), "u32 at {pos}");
            assert_eq!(r64.is_some(), pos + 8 <= data.len(), "u64 at {pos}");
        }
        assert_eq!(read_u32_at(&data, usize::MAX), None);
        assert_eq!(read_u64_at(&data, usize::MAX - 4), None);
        assert_eq!(read_u32_at(&data, 0), Some(0x00010203));
    }

    #[test]
    fn crc_tail_framing_roundtrips_and_rejects_short_frames() {
        let body = b"fetch-reply body".to_vec();
        let mut framed = body.clone();
        framed.extend_from_slice(&crc32(&body).to_be_bytes());
        assert_eq!(split_crc_tail(&framed, 1), Some((&body[..], crc32(&body))));
        assert_eq!(checked_crc_frame(&framed, 1), Some(&body[..]));
        // A frame shorter than min_body + 4 is rejected, down to empty.
        for cut in 1..=framed.len() {
            let short = &framed[..framed.len() - cut];
            if short.len() < 1 + 4 {
                assert_eq!(split_crc_tail(short, 1), None);
            }
            assert_eq!(checked_crc_frame(short, 1), None, "cut {cut}");
        }
        // A corrupted tail or body fails the checked variant.
        let mut bad = framed.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(checked_crc_frame(&bad, 1), None);
        let mut bad = framed;
        bad[0] ^= 1;
        assert_eq!(checked_crc_frame(&bad, 1), None);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"heartbeat payload bytes".to_vec();
        let want = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), want, "bit {i} not detected");
        }
    }
}
