//! Shared wire-format helpers for the ST-TCP control protocols.
//!
//! Both heartbeats and recovery control messages travel over channels the
//! chaos engine can corrupt in flight (a flipped bit on a flaky switch
//! port or serial cable). TCP segments are already protected by the
//! internet checksum; the ST-TCP control formats carry their own CRC-32
//! so a corrupted message is *dropped like a lost one* rather than acted
//! on — acting on a corrupted heartbeat could trigger a spurious
//! failover or, worse, a spurious STONITH.

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data`.
///
/// Bitwise implementation — control messages are tens to hundreds of
/// bytes, so a lookup table buys nothing measurable here.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"heartbeat payload bytes".to_vec();
        let want = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), want, "bit {i} not detected");
        }
    }
}
