//! Shared wire-format helpers for the ST-TCP control protocols.
//!
//! Both heartbeats and recovery control messages travel over channels the
//! chaos engine can corrupt in flight (a flipped bit on a flaky switch
//! port or serial cable). TCP segments are already protected by the
//! internet checksum; the ST-TCP control formats carry their own CRC-32
//! so a corrupted message is *dropped like a lost one* rather than acted
//! on — acting on a corrupted heartbeat could trigger a spurious
//! failover or, worse, a spurious STONITH.

/// The byte-at-a-time CRC-32 lookup table, built at compile time.
///
/// Heartbeats are encoded and decoded on every period for every
/// connection, so the CRC sits on the simulator's hot path; the table
/// turns 8 branchy shifts per byte into one lookup.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

/// An incremental CRC-32, for checksumming a message in pieces (e.g.
/// verifying a heartbeat with its on-wire CRC field treated as zero,
/// without copying the frame into a scratch buffer first).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh CRC state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Folds `data` into the CRC.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The final CRC value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0u16..97)
            .map(|i| (i.wrapping_mul(131) >> 2) as u8)
            .collect();
        let whole = crc32(&data);
        for split in 0..=data.len() {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"heartbeat payload bytes".to_vec();
        let want = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), want, "bit {i} not detected");
        }
    }
}
