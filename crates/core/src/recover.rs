//! Missed-byte recovery between backup and primary (§4.3, Table 1 row 5).
//!
//! A temporary network failure (NIC buffer overflow, switch loss) can
//! drop client segments on the *tap* path to the backup even though the
//! primary received and acknowledged them. The client will never
//! retransmit those bytes, so the backup fetches them from the primary's
//! extended receive buffer over the server-to-server IP channel.
//!
//! The wire format here is the control protocol those fetches ride on.
//! If the primary crashes while bytes are still missing, the backup has
//! no source for them and the failure is unrecoverable (the paper's
//! output-commit caveat; a logger would be needed — out of scope, as in
//! the paper).

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

/// A control message on the server-to-server channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Backup → primary: "send me stream bytes of connection `conn`
    /// starting at `from`, at most `max`".
    FetchRequest {
        /// Connection key ([`crate::heartbeat::conn_key`]).
        conn: u32,
        /// First missing stream offset.
        from: u64,
        /// Maximum bytes wanted.
        max: u32,
    },
    /// Primary → backup: the requested bytes (possibly fewer than asked,
    /// empty if the range is not retained).
    FetchReply {
        /// Connection key.
        conn: u32,
        /// Stream offset of the first byte in `data`.
        from: u64,
        /// The recovered bytes.
        data: Bytes,
    },
}

/// Upper bound on `FetchReply.data` accepted on the wire.
///
/// A fetch reply answers one request for missed bytes, bounded by the
/// extended receive buffer (64 KiB default). Without this cap a
/// corrupted length field could make a receiver buffer arbitrarily much.
pub const MAX_FETCH_DATA: usize = 256 * 1024;

/// Wire length of a `FetchRequest`: `type:1 conn:4 from:8 max:4 crc:4`.
pub const FETCH_REQUEST_LEN: usize = 21;
/// Wire length of a `FetchReply` before its data: `type:1 conn:4 from:8
/// len:4` (the CRC-32 trails the data).
pub const FETCH_REPLY_HEADER_LEN: usize = 17;
/// Wire length of the trailing CRC-32 on every control message.
pub const CTRL_CRC_LEN: usize = 4;

/// Error returned when decoding a control message fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlDecodeError;

impl fmt::Display for CtrlDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed recovery control message")
    }
}

impl std::error::Error for CtrlDecodeError {}

impl CtrlMsg {
    /// Serializes the message. Every message carries a trailing CRC-32
    /// over the preceding bytes; the reply carries an explicit data
    /// length so corruption cannot silently re-frame the payload.
    ///
    /// # Panics
    ///
    /// If a `FetchReply` carries more than [`MAX_FETCH_DATA`] bytes —
    /// such a message could never be decoded, so it is a sender bug.
    pub fn encode(&self) -> Bytes {
        let mut b = match self {
            CtrlMsg::FetchRequest { conn, from, max } => {
                let mut b = BytesMut::with_capacity(FETCH_REQUEST_LEN);
                b.put_u8(1);
                b.put_u32(*conn);
                b.put_u64(*from);
                b.put_u32(*max);
                b
            }
            CtrlMsg::FetchReply { conn, from, data } => {
                assert!(
                    data.len() <= MAX_FETCH_DATA,
                    "FetchReply data {} exceeds MAX_FETCH_DATA",
                    data.len()
                );
                let mut b =
                    BytesMut::with_capacity(FETCH_REPLY_HEADER_LEN + data.len() + CTRL_CRC_LEN);
                b.put_u8(2);
                b.put_u32(*conn);
                b.put_u64(*from);
                b.put_u32(data.len() as u32);
                b.put_slice(data);
                b
            }
        };
        let crc = crate::wire::crc32(&b);
        b.put_u32(crc);
        b.freeze()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// Returns [`CtrlDecodeError`] on truncation, trailing garbage, an
    /// unknown type byte, an oversized reply length, or a CRC mismatch.
    /// Total: never panics, any input.
    pub fn decode(wire: &[u8]) -> Result<CtrlMsg, CtrlDecodeError> {
        if wire.len() < CTRL_CRC_LEN + 1 {
            return Err(CtrlDecodeError);
        }
        let body = &wire[..wire.len() - CTRL_CRC_LEN];
        let stored_crc = u32::from_be_bytes(wire[wire.len() - CTRL_CRC_LEN..].try_into().unwrap());
        if crate::wire::crc32(body) != stored_crc {
            return Err(CtrlDecodeError);
        }
        let rd32 = |p: usize| u32::from_be_bytes([body[p], body[p + 1], body[p + 2], body[p + 3]]);
        let rd64 = |p: usize| {
            u64::from_be_bytes([
                body[p],
                body[p + 1],
                body[p + 2],
                body[p + 3],
                body[p + 4],
                body[p + 5],
                body[p + 6],
                body[p + 7],
            ])
        };
        match body[0] {
            1 => {
                if body.len() != FETCH_REQUEST_LEN - CTRL_CRC_LEN {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::FetchRequest {
                    conn: rd32(1),
                    from: rd64(5),
                    max: rd32(13),
                })
            }
            2 => {
                if body.len() < FETCH_REPLY_HEADER_LEN {
                    return Err(CtrlDecodeError);
                }
                let len = rd32(13) as usize;
                if len > MAX_FETCH_DATA || body.len() != FETCH_REPLY_HEADER_LEN + len {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::FetchReply {
                    conn: rd32(1),
                    from: rd64(5),
                    data: Bytes::copy_from_slice(&body[FETCH_REPLY_HEADER_LEN..]),
                })
            }
            _ => Err(CtrlDecodeError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let m = CtrlMsg::FetchRequest {
            conn: 0xdead_beef,
            from: 123_456_789_012,
            max: 8_192,
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn reply_roundtrip() {
        let m = CtrlMsg::FetchReply {
            conn: 7,
            from: 42,
            data: Bytes::from_static(b"recovered bytes"),
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn empty_reply_roundtrip() {
        let m = CtrlMsg::FetchReply {
            conn: 7,
            from: 42,
            data: Bytes::new(),
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(CtrlMsg::decode(&[]), Err(CtrlDecodeError));
        assert_eq!(CtrlMsg::decode(&[9, 0, 0]), Err(CtrlDecodeError));
        assert_eq!(CtrlMsg::decode(&[1, 0, 0, 0]), Err(CtrlDecodeError));
        assert_eq!(CtrlMsg::decode(&[2, 0]), Err(CtrlDecodeError));
    }

    #[test]
    fn every_single_bit_flip_rejected() {
        let m = CtrlMsg::FetchReply {
            conn: 7,
            from: 42,
            data: Bytes::from_static(b"recovered bytes"),
        };
        let wire = m.encode().to_vec();
        for bit in 0..wire.len() * 8 {
            let mut flipped = wire.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                CtrlMsg::decode(&flipped),
                Err(CtrlDecodeError),
                "flipping bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn oversized_reply_length_rejected() {
        // Forge a reply whose length field claims more than the cap, with
        // a valid CRC — the explicit bound must still reject it.
        let mut b = vec![2u8];
        b.extend_from_slice(&7u32.to_be_bytes());
        b.extend_from_slice(&42u64.to_be_bytes());
        b.extend_from_slice(&((MAX_FETCH_DATA as u32) + 1).to_be_bytes());
        b.extend_from_slice(&[0u8; 32]); // far less data than claimed
        let crc = crate::wire::crc32(&b);
        b.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(CtrlMsg::decode(&b), Err(CtrlDecodeError));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = CtrlMsg::FetchRequest {
            conn: 1,
            from: 2,
            max: 3,
        };
        let mut wire = m.encode().to_vec();
        wire.push(0);
        assert_eq!(CtrlMsg::decode(&wire), Err(CtrlDecodeError));
    }
}
