//! Missed-byte recovery between backup and primary (§4.3, Table 1 row 5).
//!
//! A temporary network failure (NIC buffer overflow, switch loss) can
//! drop client segments on the *tap* path to the backup even though the
//! primary received and acknowledged them. The client will never
//! retransmit those bytes, so the backup fetches them from the primary's
//! extended receive buffer over the server-to-server IP channel.
//!
//! The wire format here is the control protocol those fetches ride on.
//! If the primary crashes while bytes are still missing, the backup has
//! no source for them and the failure is unrecoverable (the paper's
//! output-commit caveat; a logger would be needed — out of scope, as in
//! the paper).

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

/// A control message on the server-to-server channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Backup → primary: "send me stream bytes of connection `conn`
    /// starting at `from`, at most `max`".
    FetchRequest {
        /// Connection key ([`crate::heartbeat::conn_key`]).
        conn: u32,
        /// First missing stream offset.
        from: u64,
        /// Maximum bytes wanted.
        max: u32,
    },
    /// Primary → backup: the requested bytes (possibly fewer than asked,
    /// empty if the range is not retained).
    FetchReply {
        /// Connection key.
        conn: u32,
        /// Stream offset of the first byte in `data`.
        from: u64,
        /// The recovered bytes.
        data: Bytes,
    },
    /// Joiner → active: "I booted next to you; send me snapshots of
    /// every live connection so I can become your backup." `session` is
    /// a joiner-chosen nonce that stamps the whole join exchange, so a
    /// stale snapshot from an earlier aborted join is ignored. Re-sent
    /// every heartbeat period until [`CtrlMsg::JoinDone`] arrives.
    JoinRequest {
        /// Join-session nonce (non-zero).
        session: u32,
    },
    /// Active → joiner: the full re-integration state of one live
    /// connection.
    ConnSnapshot(ConnSnapshotMsg),
    /// Active → joiner: every snapshot for this join session has been
    /// sent; `conns` says how many to expect (idempotent re-sends
    /// included).
    JoinDone {
        /// Join-session nonce.
        session: u32,
        /// Number of live connections snapshotted.
        conns: u32,
        /// Pool rank assigned to the joiner for this membership epoch
        /// (0 in pair mode, where ranks are unused).
        new_rank: u8,
    },
    /// Joiner → active: all snapshots installed and the tap has caught
    /// up — resume fault-tolerant lockstep.
    JoinComplete {
        /// Join-session nonce.
        session: u32,
    },
    /// Pool candidate → surviving members: "I observe `target_rank` dead
    /// on both heartbeat links; vote to fence it so I may act". Re-sent
    /// every check period until quorum or abandonment.
    FenceRequest {
        /// Fence-round number, monotone per initiator.
        epoch: u32,
        /// Rank of the member to fence.
        target_rank: u8,
        /// Rank of the requesting candidate.
        candidate_rank: u8,
    },
    /// Pool member → candidate: vote on a fence request. `granted` is
    /// false when the voter still hears the target or knows a
    /// better-ranked candidate.
    FenceAck {
        /// Fence-round number being answered.
        epoch: u32,
        /// Rank of the member to fence.
        target_rank: u8,
        /// Rank of the voting member.
        voter_rank: u8,
        /// True if the voter confirms the target dead and the candidate
        /// best-ranked.
        granted: bool,
    },
    /// Candidate → surviving members after quorum: `target_rank` is now
    /// fenced; drop it from quorum arithmetic and abandon any fence
    /// round of your own against it.
    FenceCommit {
        /// Fence-round number that reached quorum.
        epoch: u32,
        /// Rank of the fenced member.
        target_rank: u8,
    },
}

/// Body of [`CtrlMsg::ConnSnapshot`]: everything a joiner needs to
/// resume one live connection as a tapping-but-suppressed replica.
///
/// The server-side address of the tuple is *not* carried — both servers
/// are configured with the same service address, so only the client end
/// varies per connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnSnapshotMsg {
    /// Join-session nonce this snapshot answers.
    pub session: u32,
    /// Connection key ([`crate::heartbeat::conn_key`]).
    pub conn: u32,
    /// Client IPv4 address (big-endian u32, as in the IP header).
    pub client_ip: u32,
    /// Client TCP port.
    pub client_port: u16,
    /// The server-side initial send sequence number.
    pub iss: u32,
    /// The client's initial sequence number.
    pub peer_isn: u32,
    /// Lowest unacknowledged server→client stream offset; `unacked`
    /// starts here.
    pub snd_una: u64,
    /// Client→server stream offset the joiner's receive side starts at;
    /// `pending` starts here.
    pub rcv_start: u64,
    /// Stream offset of the client's FIN, if it has arrived in order.
    pub fin_offset: Option<u64>,
    /// True if the local application has closed its sending side.
    pub local_fin: bool,
    /// True if the client's FIN was already consumed by the application.
    pub peer_fin_consumed: bool,
    /// The active side's application state digest at snapshot time; the
    /// joiner verifies its restored replica digests identically.
    pub app_digest: u64,
    /// Un-acknowledged server→client bytes `[snd_una, ..)`.
    pub unacked: Bytes,
    /// In-order client bytes received but not yet read by the
    /// application, `[rcv_start, ..)`.
    pub pending: Bytes,
    /// Opaque serialized application state
    /// ([`crate::app::Application::snapshot`]).
    pub app_state: Bytes,
}

/// Upper bound on `FetchReply.data` accepted on the wire.
///
/// A fetch reply answers one request for missed bytes, bounded by the
/// extended receive buffer (64 KiB default). Without this cap a
/// corrupted length field could make a receiver buffer arbitrarily much.
pub const MAX_FETCH_DATA: usize = 256 * 1024;

/// Wire length of a `FetchRequest`: `type:1 conn:4 from:8 max:4 crc:4`.
pub const FETCH_REQUEST_LEN: usize = 21;
/// Wire length of a `FetchReply` before its data: `type:1 conn:4 from:8
/// len:4` (the CRC-32 trails the data).
pub const FETCH_REPLY_HEADER_LEN: usize = 17;
/// Wire length of the trailing CRC-32 on every control message.
pub const CTRL_CRC_LEN: usize = 4;
/// Wire length of a `JoinRequest` / `JoinComplete`: `type:1 session:4
/// crc:4`.
pub const JOIN_SHORT_LEN: usize = 9;
/// Wire length of a `JoinDone`: `type:1 session:4 conns:4 new_rank:1
/// crc:4`.
pub const JOIN_DONE_LEN: usize = 14;
/// Wire length of a `FenceRequest`: `type:1 epoch:4 target_rank:1
/// candidate_rank:1 crc:4`.
pub const FENCE_REQUEST_LEN: usize = 11;
/// Wire length of a `FenceAck`: `type:1 epoch:4 target_rank:1
/// voter_rank:1 granted:1 crc:4`.
pub const FENCE_ACK_LEN: usize = 12;
/// Wire length of a `FenceCommit`: `type:1 epoch:4 target_rank:1 crc:4`.
pub const FENCE_COMMIT_LEN: usize = 10;
/// Wire length of a `ConnSnapshot` before its three byte fields:
/// `type:1 session:4 conn:4 ip:4 port:2 iss:4 peer_isn:4 snd_una:8
/// rcv_start:8 fin_off:8 digest:8 flags:1 unacked_len:4 pending_len:4
/// app_len:4` (the CRC-32 trails the data).
pub const SNAPSHOT_HEADER_LEN: usize = 68;

const SNAP_FLAG_LOCAL_FIN: u8 = 1 << 0;
const SNAP_FLAG_PEER_FIN_CONSUMED: u8 = 1 << 1;
const SNAP_FLAG_HAS_FIN: u8 = 1 << 2;

/// Error returned when decoding a control message fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlDecodeError;

impl fmt::Display for CtrlDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed recovery control message")
    }
}

impl std::error::Error for CtrlDecodeError {}

impl CtrlMsg {
    /// Serializes the message. Every message carries a trailing CRC-32
    /// over the preceding bytes; the reply carries an explicit data
    /// length so corruption cannot silently re-frame the payload.
    ///
    /// # Panics
    ///
    /// If a `FetchReply` carries more than [`MAX_FETCH_DATA`] bytes, or
    /// any `ConnSnapshot` byte field does — such a message could never
    /// be decoded, so it is a sender bug.
    pub fn encode(&self) -> Bytes {
        let mut b = match self {
            CtrlMsg::FetchRequest { conn, from, max } => {
                let mut b = BytesMut::with_capacity(FETCH_REQUEST_LEN);
                b.put_u8(1);
                b.put_u32(*conn);
                b.put_u64(*from);
                b.put_u32(*max);
                b
            }
            CtrlMsg::FetchReply { conn, from, data } => {
                assert!(
                    data.len() <= MAX_FETCH_DATA,
                    "FetchReply data {} exceeds MAX_FETCH_DATA",
                    data.len()
                );
                let mut b =
                    BytesMut::with_capacity(FETCH_REPLY_HEADER_LEN + data.len() + CTRL_CRC_LEN);
                b.put_u8(2);
                b.put_u32(*conn);
                b.put_u64(*from);
                b.put_u32(data.len() as u32);
                b.put_slice(data);
                b
            }
            CtrlMsg::JoinRequest { session } => {
                let mut b = BytesMut::with_capacity(JOIN_SHORT_LEN);
                b.put_u8(3);
                b.put_u32(*session);
                b
            }
            CtrlMsg::ConnSnapshot(s) => {
                for (field, len) in [
                    ("unacked", s.unacked.len()),
                    ("pending", s.pending.len()),
                    ("app_state", s.app_state.len()),
                ] {
                    assert!(
                        len <= MAX_FETCH_DATA,
                        "ConnSnapshot {field} {len} exceeds MAX_FETCH_DATA"
                    );
                }
                let data_len = s.unacked.len() + s.pending.len() + s.app_state.len();
                let mut b = BytesMut::with_capacity(SNAPSHOT_HEADER_LEN + data_len + CTRL_CRC_LEN);
                b.put_u8(4);
                b.put_u32(s.session);
                b.put_u32(s.conn);
                b.put_u32(s.client_ip);
                b.put_u16(s.client_port);
                b.put_u32(s.iss);
                b.put_u32(s.peer_isn);
                b.put_u64(s.snd_una);
                b.put_u64(s.rcv_start);
                b.put_u64(s.fin_offset.unwrap_or(0));
                b.put_u64(s.app_digest);
                let mut flags = 0u8;
                if s.local_fin {
                    flags |= SNAP_FLAG_LOCAL_FIN;
                }
                if s.peer_fin_consumed {
                    flags |= SNAP_FLAG_PEER_FIN_CONSUMED;
                }
                if s.fin_offset.is_some() {
                    flags |= SNAP_FLAG_HAS_FIN;
                }
                b.put_u8(flags);
                b.put_u32(s.unacked.len() as u32);
                b.put_u32(s.pending.len() as u32);
                b.put_u32(s.app_state.len() as u32);
                b.put_slice(&s.unacked);
                b.put_slice(&s.pending);
                b.put_slice(&s.app_state);
                b
            }
            CtrlMsg::JoinDone {
                session,
                conns,
                new_rank,
            } => {
                let mut b = BytesMut::with_capacity(JOIN_DONE_LEN);
                b.put_u8(5);
                b.put_u32(*session);
                b.put_u32(*conns);
                b.put_u8(*new_rank);
                b
            }
            CtrlMsg::JoinComplete { session } => {
                let mut b = BytesMut::with_capacity(JOIN_SHORT_LEN);
                b.put_u8(6);
                b.put_u32(*session);
                b
            }
            CtrlMsg::FenceRequest {
                epoch,
                target_rank,
                candidate_rank,
            } => {
                let mut b = BytesMut::with_capacity(FENCE_REQUEST_LEN);
                b.put_u8(7);
                b.put_u32(*epoch);
                b.put_u8(*target_rank);
                b.put_u8(*candidate_rank);
                b
            }
            CtrlMsg::FenceAck {
                epoch,
                target_rank,
                voter_rank,
                granted,
            } => {
                let mut b = BytesMut::with_capacity(FENCE_ACK_LEN);
                b.put_u8(8);
                b.put_u32(*epoch);
                b.put_u8(*target_rank);
                b.put_u8(*voter_rank);
                b.put_u8(u8::from(*granted));
                b
            }
            CtrlMsg::FenceCommit { epoch, target_rank } => {
                let mut b = BytesMut::with_capacity(FENCE_COMMIT_LEN);
                b.put_u8(9);
                b.put_u32(*epoch);
                b.put_u8(*target_rank);
                b
            }
        };
        let crc = crate::wire::crc32(&b);
        b.put_u32(crc);
        b.freeze()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// Returns [`CtrlDecodeError`] on truncation, trailing garbage, an
    /// unknown type byte, an oversized reply length, or a CRC mismatch.
    /// Total: never panics, any input.
    pub fn decode(wire: &[u8]) -> Result<CtrlMsg, CtrlDecodeError> {
        // Every read below goes through the total helpers in
        // `crate::wire`: a wrong or missing length precondition degrades
        // into a decode error, never a panic — the control channel
        // carries whatever the chaos engine mangles it into.
        let body = crate::wire::checked_crc_frame(wire, 1).ok_or(CtrlDecodeError)?;
        let rd8 = |p: usize| body.get(p).copied().ok_or(CtrlDecodeError);
        let rd32 = |p: usize| crate::wire::read_u32_at(body, p).ok_or(CtrlDecodeError);
        let rd64 = |p: usize| crate::wire::read_u64_at(body, p).ok_or(CtrlDecodeError);
        match rd8(0)? {
            1 => {
                if body.len() != FETCH_REQUEST_LEN - CTRL_CRC_LEN {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::FetchRequest {
                    conn: rd32(1)?,
                    from: rd64(5)?,
                    max: rd32(13)?,
                })
            }
            2 => {
                if body.len() < FETCH_REPLY_HEADER_LEN {
                    return Err(CtrlDecodeError);
                }
                let len = rd32(13)? as usize;
                if len > MAX_FETCH_DATA || body.len() != FETCH_REPLY_HEADER_LEN + len {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::FetchReply {
                    conn: rd32(1)?,
                    from: rd64(5)?,
                    data: Bytes::copy_from_slice(&body[FETCH_REPLY_HEADER_LEN..]),
                })
            }
            3 => {
                if body.len() != JOIN_SHORT_LEN - CTRL_CRC_LEN {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::JoinRequest { session: rd32(1)? })
            }
            4 => {
                if body.len() < SNAPSHOT_HEADER_LEN {
                    return Err(CtrlDecodeError);
                }
                let flags = rd8(55)?;
                if flags & !(SNAP_FLAG_LOCAL_FIN | SNAP_FLAG_PEER_FIN_CONSUMED | SNAP_FLAG_HAS_FIN)
                    != 0
                {
                    return Err(CtrlDecodeError);
                }
                let has_fin = flags & SNAP_FLAG_HAS_FIN != 0;
                let fin_field = rd64(39)?;
                if !has_fin && fin_field != 0 {
                    return Err(CtrlDecodeError);
                }
                let unacked_len = rd32(56)? as usize;
                let pending_len = rd32(60)? as usize;
                let app_len = rd32(64)? as usize;
                if unacked_len > MAX_FETCH_DATA
                    || pending_len > MAX_FETCH_DATA
                    || app_len > MAX_FETCH_DATA
                    || body.len() != SNAPSHOT_HEADER_LEN + unacked_len + pending_len + app_len
                {
                    return Err(CtrlDecodeError);
                }
                let u0 = SNAPSHOT_HEADER_LEN;
                let p0 = u0 + unacked_len;
                let a0 = p0 + pending_len;
                Ok(CtrlMsg::ConnSnapshot(ConnSnapshotMsg {
                    session: rd32(1)?,
                    conn: rd32(5)?,
                    client_ip: rd32(9)?,
                    client_port: u16::from_be_bytes([rd8(13)?, rd8(14)?]),
                    iss: rd32(15)?,
                    peer_isn: rd32(19)?,
                    snd_una: rd64(23)?,
                    rcv_start: rd64(31)?,
                    fin_offset: has_fin.then_some(fin_field),
                    local_fin: flags & SNAP_FLAG_LOCAL_FIN != 0,
                    peer_fin_consumed: flags & SNAP_FLAG_PEER_FIN_CONSUMED != 0,
                    app_digest: rd64(47)?,
                    unacked: Bytes::copy_from_slice(body.get(u0..p0).ok_or(CtrlDecodeError)?),
                    pending: Bytes::copy_from_slice(body.get(p0..a0).ok_or(CtrlDecodeError)?),
                    app_state: Bytes::copy_from_slice(body.get(a0..).ok_or(CtrlDecodeError)?),
                }))
            }
            5 => {
                if body.len() != JOIN_DONE_LEN - CTRL_CRC_LEN {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::JoinDone {
                    session: rd32(1)?,
                    conns: rd32(5)?,
                    new_rank: rd8(9)?,
                })
            }
            6 => {
                if body.len() != JOIN_SHORT_LEN - CTRL_CRC_LEN {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::JoinComplete { session: rd32(1)? })
            }
            7 => {
                if body.len() != FENCE_REQUEST_LEN - CTRL_CRC_LEN {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::FenceRequest {
                    epoch: rd32(1)?,
                    target_rank: rd8(5)?,
                    candidate_rank: rd8(6)?,
                })
            }
            8 => {
                if body.len() != FENCE_ACK_LEN - CTRL_CRC_LEN || rd8(7)? > 1 {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::FenceAck {
                    epoch: rd32(1)?,
                    target_rank: rd8(5)?,
                    voter_rank: rd8(6)?,
                    granted: rd8(7)? == 1,
                })
            }
            9 => {
                if body.len() != FENCE_COMMIT_LEN - CTRL_CRC_LEN {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::FenceCommit {
                    epoch: rd32(1)?,
                    target_rank: rd8(5)?,
                })
            }
            _ => Err(CtrlDecodeError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let m = CtrlMsg::FetchRequest {
            conn: 0xdead_beef,
            from: 123_456_789_012,
            max: 8_192,
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn reply_roundtrip() {
        let m = CtrlMsg::FetchReply {
            conn: 7,
            from: 42,
            data: Bytes::from_static(b"recovered bytes"),
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn empty_reply_roundtrip() {
        let m = CtrlMsg::FetchReply {
            conn: 7,
            from: 42,
            data: Bytes::new(),
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(CtrlMsg::decode(&[]), Err(CtrlDecodeError));
        assert_eq!(CtrlMsg::decode(&[9, 0, 0]), Err(CtrlDecodeError));
        assert_eq!(CtrlMsg::decode(&[1, 0, 0, 0]), Err(CtrlDecodeError));
        assert_eq!(CtrlMsg::decode(&[2, 0]), Err(CtrlDecodeError));
    }

    #[test]
    fn every_single_bit_flip_rejected() {
        let m = CtrlMsg::FetchReply {
            conn: 7,
            from: 42,
            data: Bytes::from_static(b"recovered bytes"),
        };
        let wire = m.encode().to_vec();
        for bit in 0..wire.len() * 8 {
            let mut flipped = wire.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                CtrlMsg::decode(&flipped),
                Err(CtrlDecodeError),
                "flipping bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn oversized_reply_length_rejected() {
        // Forge a reply whose length field claims more than the cap, with
        // a valid CRC — the explicit bound must still reject it.
        let mut b = vec![2u8];
        b.extend_from_slice(&7u32.to_be_bytes());
        b.extend_from_slice(&42u64.to_be_bytes());
        b.extend_from_slice(&((MAX_FETCH_DATA as u32) + 1).to_be_bytes());
        b.extend_from_slice(&[0u8; 32]); // far less data than claimed
        let crc = crate::wire::crc32(&b);
        b.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(CtrlMsg::decode(&b), Err(CtrlDecodeError));
    }

    fn sample_snapshot() -> CtrlMsg {
        CtrlMsg::ConnSnapshot(ConnSnapshotMsg {
            session: 0x1234_5678,
            conn: 0xfeed_f00d,
            client_ip: u32::from(std::net::Ipv4Addr::new(10, 0, 0, 3)),
            client_port: 40_001,
            iss: 0x8000_0001,
            peer_isn: 7,
            snd_una: 123_456,
            rcv_start: 654_321,
            fin_offset: Some(654_400),
            local_fin: true,
            peer_fin_consumed: false,
            app_digest: 0xdead_beef_cafe_f00d,
            unacked: Bytes::from_static(b"server bytes in flight"),
            pending: Bytes::from_static(b"client bytes unread"),
            app_state: Bytes::from_static(b"\x01\x02\x03"),
        })
    }

    #[test]
    fn join_messages_roundtrip() {
        for m in [
            CtrlMsg::JoinRequest {
                session: 0xabcd_0001,
            },
            sample_snapshot(),
            CtrlMsg::JoinDone {
                session: 0xabcd_0001,
                conns: 3,
                new_rank: 4,
            },
            CtrlMsg::JoinComplete {
                session: 0xabcd_0001,
            },
        ] {
            assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn fence_messages_roundtrip() {
        for m in [
            CtrlMsg::FenceRequest {
                epoch: 7,
                target_rank: 0,
                candidate_rank: 1,
            },
            CtrlMsg::FenceAck {
                epoch: 7,
                target_rank: 0,
                voter_rank: 2,
                granted: true,
            },
            CtrlMsg::FenceAck {
                epoch: 8,
                target_rank: 1,
                voter_rank: 0,
                granted: false,
            },
            CtrlMsg::FenceCommit {
                epoch: 7,
                target_rank: 0,
            },
        ] {
            assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn fence_every_single_bit_flip_rejected() {
        let wire = CtrlMsg::FenceAck {
            epoch: 0x0102_0304,
            target_rank: 3,
            voter_rank: 1,
            granted: true,
        }
        .encode()
        .to_vec();
        for bit in 0..wire.len() * 8 {
            let mut flipped = wire.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                CtrlMsg::decode(&flipped),
                Err(CtrlDecodeError),
                "flipping bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn fence_ack_nonboolean_granted_rejected() {
        // Forge an ack whose granted byte is 2, with a valid CRC — the
        // explicit range check must still reject it.
        let mut b = vec![8u8];
        b.extend_from_slice(&7u32.to_be_bytes());
        b.extend_from_slice(&[0, 2, 2]);
        let crc = crate::wire::crc32(&b);
        b.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(CtrlMsg::decode(&b), Err(CtrlDecodeError));
    }

    #[test]
    fn snapshot_without_fin_and_empty_fields_roundtrips() {
        let m = CtrlMsg::ConnSnapshot(ConnSnapshotMsg {
            session: 1,
            conn: 2,
            client_ip: 0,
            client_port: 0,
            iss: 0,
            peer_isn: 0,
            snd_una: 0,
            rcv_start: 0,
            fin_offset: None,
            local_fin: false,
            peer_fin_consumed: true,
            app_digest: 0,
            unacked: Bytes::new(),
            pending: Bytes::new(),
            app_state: Bytes::new(),
        });
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn snapshot_every_single_bit_flip_rejected() {
        let wire = sample_snapshot().encode().to_vec();
        for bit in 0..wire.len() * 8 {
            let mut flipped = wire.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                CtrlMsg::decode(&flipped),
                Err(CtrlDecodeError),
                "flipping bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn snapshot_truncations_rejected() {
        let wire = sample_snapshot().encode().to_vec();
        for len in 0..wire.len() {
            assert_eq!(
                CtrlMsg::decode(&wire[..len]),
                Err(CtrlDecodeError),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn snapshot_unknown_flag_rejected_even_with_valid_crc() {
        let wire = sample_snapshot().encode();
        let mut body = wire[..wire.len() - CTRL_CRC_LEN].to_vec();
        body[55] |= 1 << 6; // unknown flag bit
        let crc = crate::wire::crc32(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(CtrlMsg::decode(&body), Err(CtrlDecodeError));
    }

    #[test]
    fn snapshot_nonzero_fin_field_without_flag_rejected() {
        let CtrlMsg::ConnSnapshot(mut s) = sample_snapshot() else {
            unreachable!()
        };
        s.fin_offset = None;
        let wire = CtrlMsg::ConnSnapshot(s).encode();
        let mut body = wire[..wire.len() - CTRL_CRC_LEN].to_vec();
        body[39..47].copy_from_slice(&77u64.to_be_bytes()); // fin field set, flag clear
        let crc = crate::wire::crc32(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(CtrlMsg::decode(&body), Err(CtrlDecodeError));
    }

    #[test]
    fn snapshot_oversized_field_length_rejected() {
        // Forge a snapshot whose unacked length claims more than the
        // cap, with a valid CRC — the explicit bound must reject it.
        let wire = sample_snapshot().encode();
        let mut body = wire[..wire.len() - CTRL_CRC_LEN].to_vec();
        body[56..60].copy_from_slice(&((MAX_FETCH_DATA as u32) + 1).to_be_bytes());
        let crc = crate::wire::crc32(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(CtrlMsg::decode(&body), Err(CtrlDecodeError));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = CtrlMsg::FetchRequest {
            conn: 1,
            from: 2,
            max: 3,
        };
        let mut wire = m.encode().to_vec();
        wire.push(0);
        assert_eq!(CtrlMsg::decode(&wire), Err(CtrlDecodeError));
    }
}
