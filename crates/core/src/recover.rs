//! Missed-byte recovery between backup and primary (§4.3, Table 1 row 5).
//!
//! A temporary network failure (NIC buffer overflow, switch loss) can
//! drop client segments on the *tap* path to the backup even though the
//! primary received and acknowledged them. The client will never
//! retransmit those bytes, so the backup fetches them from the primary's
//! extended receive buffer over the server-to-server IP channel.
//!
//! The wire format here is the control protocol those fetches ride on.
//! If the primary crashes while bytes are still missing, the backup has
//! no source for them and the failure is unrecoverable (the paper's
//! output-commit caveat; a logger would be needed — out of scope, as in
//! the paper).

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

/// A control message on the server-to-server channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Backup → primary: "send me stream bytes of connection `conn`
    /// starting at `from`, at most `max`".
    FetchRequest {
        /// Connection key ([`crate::heartbeat::conn_key`]).
        conn: u32,
        /// First missing stream offset.
        from: u64,
        /// Maximum bytes wanted.
        max: u32,
    },
    /// Primary → backup: the requested bytes (possibly fewer than asked,
    /// empty if the range is not retained).
    FetchReply {
        /// Connection key.
        conn: u32,
        /// Stream offset of the first byte in `data`.
        from: u64,
        /// The recovered bytes.
        data: Bytes,
    },
}

/// Error returned when decoding a control message fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlDecodeError;

impl fmt::Display for CtrlDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed recovery control message")
    }
}

impl std::error::Error for CtrlDecodeError {}

impl CtrlMsg {
    /// Serializes the message.
    pub fn encode(&self) -> Bytes {
        match self {
            CtrlMsg::FetchRequest { conn, from, max } => {
                let mut b = BytesMut::with_capacity(17);
                b.put_u8(1);
                b.put_u32(*conn);
                b.put_u64(*from);
                b.put_u32(*max);
                b.freeze()
            }
            CtrlMsg::FetchReply { conn, from, data } => {
                let mut b = BytesMut::with_capacity(13 + data.len());
                b.put_u8(2);
                b.put_u32(*conn);
                b.put_u64(*from);
                b.put_slice(data);
                b.freeze()
            }
        }
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// Returns [`CtrlDecodeError`] on truncation or an unknown type byte.
    pub fn decode(wire: &[u8]) -> Result<CtrlMsg, CtrlDecodeError> {
        if wire.is_empty() {
            return Err(CtrlDecodeError);
        }
        let rd32 = |p: usize| u32::from_be_bytes([wire[p], wire[p + 1], wire[p + 2], wire[p + 3]]);
        let rd64 = |p: usize| {
            u64::from_be_bytes([
                wire[p],
                wire[p + 1],
                wire[p + 2],
                wire[p + 3],
                wire[p + 4],
                wire[p + 5],
                wire[p + 6],
                wire[p + 7],
            ])
        };
        match wire[0] {
            1 => {
                if wire.len() < 17 {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::FetchRequest {
                    conn: rd32(1),
                    from: rd64(5),
                    max: rd32(13),
                })
            }
            2 => {
                if wire.len() < 13 {
                    return Err(CtrlDecodeError);
                }
                Ok(CtrlMsg::FetchReply {
                    conn: rd32(1),
                    from: rd64(5),
                    data: Bytes::copy_from_slice(&wire[13..]),
                })
            }
            _ => Err(CtrlDecodeError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let m = CtrlMsg::FetchRequest {
            conn: 0xdead_beef,
            from: 123_456_789_012,
            max: 8_192,
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn reply_roundtrip() {
        let m = CtrlMsg::FetchReply {
            conn: 7,
            from: 42,
            data: Bytes::from_static(b"recovered bytes"),
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn empty_reply_roundtrip() {
        let m = CtrlMsg::FetchReply {
            conn: 7,
            from: 42,
            data: Bytes::new(),
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(CtrlMsg::decode(&[]), Err(CtrlDecodeError));
        assert_eq!(CtrlMsg::decode(&[9, 0, 0]), Err(CtrlDecodeError));
        assert_eq!(CtrlMsg::decode(&[1, 0, 0, 0]), Err(CtrlDecodeError));
        assert_eq!(CtrlMsg::decode(&[2, 0]), Err(CtrlDecodeError));
    }
}
