//! The ST-TCP heartbeat: wire format and per-link bookkeeping.
//!
//! Each server sends a heartbeat every `hb_period` on **both** links (IP
//! and serial). The payload carries, per TCP connection, exactly the four
//! fields the paper enumerates in §3 — `LastByteReceived`,
//! `LastAckReceived`, `LastAppByteWritten`, `LastAppByteRead` — plus
//! FIN/RST generation notices, and (while the IP heartbeat is down) the
//! gateway-ping results of §4.3.
//!
//! The wire format packs each connection into 21 bytes (the paper claims
//! "<20 bytes per TCP connection"; experiment E-S1 measures ours). The
//! byte counters travel as wrapping `u32`s and are unwrapped at the
//! receiver against its last-known 64-bit values, the same trick TCP
//! itself uses for sequence numbers.

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

use simtcp::socket::FourTuple;

use crate::config::Role;

/// A compact, stable identifier for a connection shared by both servers.
///
/// Both servers observe the same client four-tuple (the backup taps the
/// same SYN), so a keyed hash of it names the connection consistently on
/// both sides without coordination.
pub fn conn_key(tuple: FourTuple) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in tuple.local.0.octets() {
        eat(b);
    }
    for b in tuple.local.1.to_be_bytes() {
        eat(b);
    }
    for b in tuple.remote.0.octets() {
        eat(b);
    }
    for b in tuple.remote.1.to_be_bytes() {
        eat(b);
    }
    (h ^ (h >> 32)) as u32
}

/// Unwraps a 32-bit wire counter to 64 bits near a last-known value.
///
/// Exact as long as the true value lies within ±2³¹ of `near` — heartbeat
/// counters advance by at most a few megabytes between heartbeats, so this
/// holds with enormous margin.
pub fn unwrap_u32_near(wire: u32, near: u64) -> u64 {
    let delta = wire.wrapping_sub(near as u32) as i32 as i64;
    (near as i64 + delta).max(0) as u64
}

/// Per-connection heartbeat record (§3's field list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnHb {
    /// Connection identifier ([`conn_key`]).
    pub key: u32,
    /// Contiguous client bytes received by TCP (`LastByteReceived`).
    pub last_byte_received: u64,
    /// Highest client ACK seen (`LastAckReceived`).
    pub last_ack_received: u64,
    /// Bytes the application has written to the TCP send buffer
    /// (`LastAppByteWritten`).
    pub last_app_byte_written: u64,
    /// Bytes the application has read from the TCP receive buffer
    /// (`LastAppByteRead`).
    pub last_app_byte_read: u64,
    /// This server's TCP has generated a FIN for the connection.
    pub fin_generated: bool,
    /// This server's TCP has generated an RST for the connection.
    pub rst_generated: bool,
    /// This server's *own* watchdog suspects its application replica has
    /// failed (the §4.2.2 extension) — a self-report the peer acts on.
    pub app_suspected: bool,
}

/// Gateway-ping results carried while the IP heartbeat is down (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PingReport {
    /// Consecutive gateway pings that went unanswered.
    pub consecutive_failures: u32,
    /// Total pings attempted since the campaign began.
    pub attempts: u32,
}

/// One heartbeat message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbPayload {
    /// Sender's heartbeat sequence number (wrapping).
    pub seqno: u32,
    /// Sender's current role.
    pub role: Role,
    /// Sender's replica-pool rank (0 in pair mode). Ranks order takeover
    /// candidacy in an N-replica pool and change when a rebooted node
    /// rejoins, so every heartbeat announces the sender's current one.
    pub rank: u8,
    /// Per-connection records.
    pub conns: Vec<ConnHb>,
    /// Ping report, present only during an IP-heartbeat outage.
    pub ping: Option<PingReport>,
}

/// Error returned when decoding a heartbeat fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbDecodeError;

impl fmt::Display for HbDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed heartbeat payload")
    }
}

impl std::error::Error for HbDecodeError {}

/// Fixed header length of the heartbeat wire format (includes the
/// CRC-32 at bytes 9..13).
pub const HB_HEADER_LEN: usize = 13;
/// Wire length of one per-connection record.
pub const HB_CONN_LEN: usize = 21;
/// Wire length of the optional ping report.
pub const HB_PING_LEN: usize = 8;

impl HbPayload {
    /// Serializes the heartbeat.
    ///
    /// Layout: `seqno:4 | role:1 | rank:1 | flags:1 | conn_count:2 | crc:4 |
    /// [key:4 lbr:4 lar:4 labw:4 labr:4 flags:1]* | [fails:4 attempts:4]?`
    ///
    /// The CRC-32 covers the whole message with the CRC field itself
    /// zeroed; both heartbeat links can corrupt frames in flight and a
    /// heartbeat acted on corruptly could trigger a spurious failover.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.wire_len());
        b.put_u32(self.seqno);
        b.put_u8(match self.role {
            Role::Primary => 0,
            Role::Backup => 1,
        });
        b.put_u8(self.rank);
        b.put_u8(self.ping.is_some() as u8);
        b.put_u16(self.conns.len() as u16);
        b.put_u32(0); // CRC placeholder, patched below.
        for c in &self.conns {
            b.put_u32(c.key);
            b.put_u32(c.last_byte_received as u32);
            b.put_u32(c.last_ack_received as u32);
            b.put_u32(c.last_app_byte_written as u32);
            b.put_u32(c.last_app_byte_read as u32);
            b.put_u8(
                (c.fin_generated as u8)
                    | (c.rst_generated as u8) << 1
                    | (c.app_suspected as u8) << 2,
            );
        }
        if let Some(p) = self.ping {
            b.put_u32(p.consecutive_failures);
            b.put_u32(p.attempts);
        }
        let crc = crate::wire::crc32(&b);
        b[9..13].copy_from_slice(&crc.to_be_bytes());
        b.freeze()
    }

    /// The encoded size in bytes.
    pub fn wire_len(&self) -> usize {
        HB_HEADER_LEN
            + self.conns.len() * HB_CONN_LEN
            + if self.ping.is_some() { HB_PING_LEN } else { 0 }
    }

    /// Parses a heartbeat. Counters come back as raw `u32`s widened to
    /// `u64`; callers unwrap them against known state with
    /// [`unwrap_u32_near`].
    ///
    /// # Errors
    ///
    /// Returns [`HbDecodeError`] on truncation, trailing garbage, a bad
    /// role byte, or a CRC mismatch. Total: never panics, any input.
    pub fn decode(wire: &[u8]) -> Result<HbPayload, HbDecodeError> {
        if wire.len() < HB_HEADER_LEN {
            return Err(HbDecodeError);
        }
        let seqno = u32::from_be_bytes([wire[0], wire[1], wire[2], wire[3]]);
        let role = match wire[4] {
            0 => Role::Primary,
            1 => Role::Backup,
            _ => return Err(HbDecodeError),
        };
        let rank = wire[5];
        let has_ping = match wire[6] {
            0 => false,
            1 => true,
            _ => return Err(HbDecodeError),
        };
        let n = u16::from_be_bytes([wire[7], wire[8]]) as usize;
        let need = HB_HEADER_LEN + n * HB_CONN_LEN + if has_ping { HB_PING_LEN } else { 0 };
        // Exact length: a message is one datagram, so trailing bytes mean
        // corruption (a mangled conn_count would otherwise mis-frame).
        if wire.len() != need {
            return Err(HbDecodeError);
        }
        // All remaining reads go through the total helpers in
        // `crate::wire`, so a wrong length precondition degrades into a
        // decode error instead of a panic.
        let rd32 = |w: &[u8], p: usize| crate::wire::read_u32_at(w, p).ok_or(HbDecodeError);
        let stored_crc = rd32(wire, 9)?;
        // Stream the CRC with the on-wire CRC field treated as zero —
        // no zeroed copy of the frame.
        let mut crc = crate::wire::Crc32::new();
        crc.update(&wire[..9]);
        crc.update(&[0u8; 4]);
        crc.update(&wire[13..]);
        if crc.finish() != stored_crc {
            return Err(HbDecodeError);
        }
        let mut conns = Vec::with_capacity(n);
        let mut at = HB_HEADER_LEN;
        for _ in 0..n {
            let flags = wire.get(at + 20).copied().ok_or(HbDecodeError)?;
            conns.push(ConnHb {
                key: rd32(wire, at)?,
                last_byte_received: rd32(wire, at + 4)? as u64,
                last_ack_received: rd32(wire, at + 8)? as u64,
                last_app_byte_written: rd32(wire, at + 12)? as u64,
                last_app_byte_read: rd32(wire, at + 16)? as u64,
                fin_generated: flags & 1 != 0,
                rst_generated: flags & 2 != 0,
                app_suspected: flags & 4 != 0,
            });
            at += HB_CONN_LEN;
        }
        let ping = match has_ping {
            true => Some(PingReport {
                consecutive_failures: rd32(wire, at)?,
                attempts: rd32(wire, at + 4)?,
            }),
            false => None,
        };
        Ok(HbPayload {
            seqno,
            role,
            rank,
            conns,
            ping,
        })
    }
}

/// Fixed header length of the v2 (delta-capable) heartbeat wire format,
/// excluding the per-link ack array.
pub const HB_V2_HEADER_LEN: usize = 25;
/// Version byte that opens every v2 frame.
pub const HB_V2_VERSION: u8 = 2;
/// Fixed header length of the v3 (batched) heartbeat wire format: the
/// v2 header plus `part:2 parts:2` inserted before the CRC.
pub const HB_V3_HEADER_LEN: usize = 29;
/// Version byte that opens every v3 (multi-part batch) frame.
pub const HB_V3_VERSION: u8 = 3;

/// What a v2 frame's connection list means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbFrameKind {
    /// Full-state resync: every live connection is present. Sent until the
    /// peer's ack epoch matches ours, and again after takeover/join/reboot.
    Full,
    /// Delta: only connections whose counters changed since the last
    /// heartbeat the peer acknowledged (dirty-until-acked).
    Delta,
}

/// A v2/v3 heartbeat frame: the v1 payload plus the delta-protocol
/// envelope, optionally split into a multi-part batch.
///
/// v2 (single) layout: `ver:1 kind:1 role:1 rank:1 flags:1 | seqno:4
/// epoch:4 | link:1 nlinks:1 conn_count:2 | ack_epoch:4 | crc:4 |
/// [ack:4]*nlinks | conn records | ping?`. The CRC-32 covers the whole
/// message with the CRC field zeroed, exactly like v1.
///
/// v3 (batch) layout is identical except the version byte is 3 and
/// `part:2 parts:2` sits between `ack_epoch` and the CRC. A round whose
/// record list exceeds the configured batch size is coalesced into
/// ⌈records/batch⌉ parts sharing one `seqno`; every part repeats the
/// envelope (CRC-framed independently, so one corrupt part costs one
/// part). Encoding is canonical: `parts <= 1` always emits v2 bytes,
/// multi-part frames always emit v3, and the decoder rejects a v3 frame
/// claiming `parts < 2` — one frame, one valid encoding.
///
/// `epoch` identifies the sender's boot incarnation; acks from a previous
/// incarnation are ignored, which forces full-state frames after any
/// reboot, takeover, or join until the peer has echoed the new epoch.
/// `acks[i]` is the highest seqno this sender has *applied* from the
/// peer on link `i` (0 = IP, `1+i` = serial link `i`; 0 means nothing
/// received), and `ack_epoch` is the peer epoch those acks refer to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbFrame {
    /// Full resync or delta.
    pub kind: HbFrameKind,
    /// Sender's boot incarnation.
    pub epoch: u32,
    /// Which link this frame was built for (0 = IP, 1+i = serial i).
    /// Serial deltas carry only their conn shard; the link id lets the
    /// receiver account acks per link.
    pub link: u8,
    /// Epoch of the *peer* that `acks` refers to.
    pub ack_epoch: u32,
    /// Batch part index, 0-based. Single-frame rounds are `part: 0,
    /// parts: 1`.
    pub part: u16,
    /// Total parts in this round's batch on this link (>= 1). The
    /// receiver acks the round's `seqno` only once all parts arrived.
    pub parts: u16,
    /// Per-link cumulative acks of the peer's frames (index 0 = IP).
    pub acks: Vec<u32>,
    /// The embedded v1-shaped payload (seqno, role, rank, conns, ping).
    pub hb: HbPayload,
}

/// Result of decoding a heartbeat of either wire version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnyHb {
    /// Legacy full-state frame.
    V1(HbPayload),
    /// Delta-capable v2 (single) or v3 (batch) frame.
    V2(HbFrame),
}

/// Decodes a heartbeat of any version. v2/v3 are tried first (their
/// leading version byte plus independent CRC placement keeps the
/// formats from colliding), then v1.
///
/// # Errors
///
/// Returns [`HbDecodeError`] if the input parses as no version.
pub fn decode_any(wire: &[u8]) -> Result<AnyHb, HbDecodeError> {
    if wire.first() == Some(&HB_V2_VERSION) || wire.first() == Some(&HB_V3_VERSION) {
        if let Ok(f) = HbFrame::decode(wire) {
            return Ok(AnyHb::V2(f));
        }
    }
    HbPayload::decode(wire).map(AnyHb::V1)
}

impl HbFrame {
    /// Serializes the frame. See the type docs for the layout. Emits v2
    /// bytes for a single-part frame (`parts <= 1`) and v3 bytes for a
    /// multi-part one — the canonical encoding the decoder enforces.
    pub fn encode(&self) -> Bytes {
        let batched = self.parts > 1;
        let mut b = BytesMut::with_capacity(self.wire_len());
        b.put_u8(if batched {
            HB_V3_VERSION
        } else {
            HB_V2_VERSION
        });
        b.put_u8(match self.kind {
            HbFrameKind::Full => 0,
            HbFrameKind::Delta => 1,
        });
        b.put_u8(match self.hb.role {
            Role::Primary => 0,
            Role::Backup => 1,
        });
        b.put_u8(self.hb.rank);
        b.put_u8(self.hb.ping.is_some() as u8);
        b.put_u32(self.hb.seqno);
        b.put_u32(self.epoch);
        b.put_u8(self.link);
        b.put_u8(self.acks.len() as u8);
        b.put_u16(self.hb.conns.len() as u16);
        b.put_u32(self.ack_epoch);
        if batched {
            b.put_u16(self.part);
            b.put_u16(self.parts);
        }
        let crc_at = b.len();
        b.put_u32(0); // CRC placeholder, patched below.
        for &a in &self.acks {
            b.put_u32(a);
        }
        for c in &self.hb.conns {
            b.put_u32(c.key);
            b.put_u32(c.last_byte_received as u32);
            b.put_u32(c.last_ack_received as u32);
            b.put_u32(c.last_app_byte_written as u32);
            b.put_u32(c.last_app_byte_read as u32);
            b.put_u8(
                (c.fin_generated as u8)
                    | (c.rst_generated as u8) << 1
                    | (c.app_suspected as u8) << 2,
            );
        }
        if let Some(p) = self.hb.ping {
            b.put_u32(p.consecutive_failures);
            b.put_u32(p.attempts);
        }
        let crc = crate::wire::crc32(&b);
        b[crc_at..crc_at + 4].copy_from_slice(&crc.to_be_bytes());
        b.freeze()
    }

    /// The encoded size in bytes.
    pub fn wire_len(&self) -> usize {
        let header = if self.parts > 1 {
            HB_V3_HEADER_LEN
        } else {
            HB_V2_HEADER_LEN
        };
        header
            + self.acks.len() * 4
            + self.hb.conns.len() * HB_CONN_LEN
            + if self.hb.ping.is_some() {
                HB_PING_LEN
            } else {
                0
            }
    }

    /// Parses a v2 or v3 frame (dispatching on the version byte).
    ///
    /// # Errors
    ///
    /// Returns [`HbDecodeError`] on a wrong version byte, truncation,
    /// trailing garbage, bad enum bytes, a non-canonical batch header
    /// (`parts < 2` or `part >= parts` in a v3 frame), or a CRC
    /// mismatch. Total: never panics, any input.
    pub fn decode(wire: &[u8]) -> Result<HbFrame, HbDecodeError> {
        let header_len = match wire.first() {
            Some(&HB_V2_VERSION) => HB_V2_HEADER_LEN,
            Some(&HB_V3_VERSION) => HB_V3_HEADER_LEN,
            _ => return Err(HbDecodeError),
        };
        if wire.len() < header_len {
            return Err(HbDecodeError);
        }
        let kind = match wire[1] {
            0 => HbFrameKind::Full,
            1 => HbFrameKind::Delta,
            _ => return Err(HbDecodeError),
        };
        let role = match wire[2] {
            0 => Role::Primary,
            1 => Role::Backup,
            _ => return Err(HbDecodeError),
        };
        let rank = wire[3];
        let has_ping = match wire[4] {
            0 => false,
            1 => true,
            _ => return Err(HbDecodeError),
        };
        let rd32 = |w: &[u8], p: usize| crate::wire::read_u32_at(w, p).ok_or(HbDecodeError);
        let seqno = rd32(wire, 5)?;
        let epoch = rd32(wire, 9)?;
        let link = wire[13];
        let nlinks = wire[14] as usize;
        let n = u16::from_be_bytes([wire[15], wire[16]]) as usize;
        let ack_epoch = rd32(wire, 17)?;
        let (part, parts) = if header_len == HB_V3_HEADER_LEN {
            let part = u16::from_be_bytes([wire[21], wire[22]]);
            let parts = u16::from_be_bytes([wire[23], wire[24]]);
            // Canonical encoding: a one-part round must be v2 bytes, and
            // a part index past the count is nonsense.
            if parts < 2 || part >= parts {
                return Err(HbDecodeError);
            }
            (part, parts)
        } else {
            (0, 1)
        };
        let need =
            header_len + nlinks * 4 + n * HB_CONN_LEN + if has_ping { HB_PING_LEN } else { 0 };
        // Exact length, like v1: trailing bytes mean corruption.
        if wire.len() != need {
            return Err(HbDecodeError);
        }
        let crc_at = header_len - 4;
        let stored_crc = rd32(wire, crc_at)?;
        let mut crc = crate::wire::Crc32::new();
        crc.update(&wire[..crc_at]);
        crc.update(&[0u8; 4]);
        crc.update(&wire[header_len..]);
        if crc.finish() != stored_crc {
            return Err(HbDecodeError);
        }
        let mut at = header_len;
        let mut acks = Vec::with_capacity(nlinks);
        for _ in 0..nlinks {
            acks.push(rd32(wire, at)?);
            at += 4;
        }
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            let flags = wire.get(at + 20).copied().ok_or(HbDecodeError)?;
            conns.push(ConnHb {
                key: rd32(wire, at)?,
                last_byte_received: rd32(wire, at + 4)? as u64,
                last_ack_received: rd32(wire, at + 8)? as u64,
                last_app_byte_written: rd32(wire, at + 12)? as u64,
                last_app_byte_read: rd32(wire, at + 16)? as u64,
                fin_generated: flags & 1 != 0,
                rst_generated: flags & 2 != 0,
                app_suspected: flags & 4 != 0,
            });
            at += HB_CONN_LEN;
        }
        let ping = match has_ping {
            true => Some(PingReport {
                consecutive_failures: rd32(wire, at)?,
                attempts: rd32(wire, at + 4)?,
            }),
            false => None,
        };
        Ok(HbFrame {
            kind,
            epoch,
            link,
            ack_epoch,
            part,
            parts,
            acks,
            hb: HbPayload {
                seqno,
                role,
                rank,
                conns,
                ping,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn tuple(port: u16) -> FourTuple {
        FourTuple {
            local: (Ipv4Addr::new(10, 0, 0, 100), 80),
            remote: (Ipv4Addr::new(10, 0, 0, 1), port),
        }
    }

    fn sample() -> HbPayload {
        HbPayload {
            seqno: 77,
            role: Role::Backup,
            rank: 2,
            conns: vec![
                ConnHb {
                    key: conn_key(tuple(40_000)),
                    last_byte_received: 123_456,
                    last_ack_received: 120_000,
                    last_app_byte_written: 99_999,
                    last_app_byte_read: 123_000,
                    fin_generated: true,
                    rst_generated: false,
                    app_suspected: true,
                },
                ConnHb {
                    key: conn_key(tuple(40_001)),
                    rst_generated: true,
                    ..Default::default()
                },
            ],
            ping: Some(PingReport {
                consecutive_failures: 2,
                attempts: 9,
            }),
        }
    }

    #[test]
    fn roundtrip() {
        let hb = sample();
        let decoded = HbPayload::decode(&hb.encode()).unwrap();
        assert_eq!(decoded, hb);
    }

    #[test]
    fn roundtrip_without_ping_or_conns() {
        let hb = HbPayload {
            seqno: 1,
            role: Role::Primary,
            rank: 0,
            conns: vec![],
            ping: None,
        };
        assert_eq!(HbPayload::decode(&hb.encode()).unwrap(), hb);
        assert_eq!(hb.wire_len(), HB_HEADER_LEN);
    }

    #[test]
    fn per_connection_cost_is_about_twenty_bytes() {
        // The paper's §3 capacity arithmetic assumes <20 B per connection;
        // ours is 21 and E-S1 reports the resulting capacity honestly.
        assert_eq!(HB_CONN_LEN, 21);
        let one = HbPayload {
            seqno: 0,
            role: Role::Primary,
            rank: 0,
            conns: vec![ConnHb::default()],
            ping: None,
        };
        assert_eq!(one.encode().len(), HB_HEADER_LEN + 21);
    }

    #[test]
    fn truncation_rejected() {
        let wire = sample().encode();
        assert_eq!(HbPayload::decode(&wire[..4]), Err(HbDecodeError));
        assert_eq!(
            HbPayload::decode(&wire[..wire.len() - 1]),
            Err(HbDecodeError)
        );
    }

    #[test]
    fn bad_role_rejected() {
        let mut wire = sample().encode().to_vec();
        wire[4] = 9;
        assert_eq!(HbPayload::decode(&wire), Err(HbDecodeError));
    }

    #[test]
    fn every_single_bit_flip_rejected() {
        // The chaos engine flips one payload bit in flight; no such
        // corruption may survive decoding as a valid heartbeat.
        let wire = sample().encode().to_vec();
        for bit in 0..wire.len() * 8 {
            let mut flipped = wire.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                HbPayload::decode(&flipped),
                Err(HbDecodeError),
                "flipping bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut wire = sample().encode().to_vec();
        wire.push(0);
        assert_eq!(HbPayload::decode(&wire), Err(HbDecodeError));
    }

    #[test]
    fn counters_wrap_but_unwrap_correctly() {
        // A counter at 6 GiB truncates on the wire; unwrapping near the
        // receiver's previous value (a little behind) recovers it.
        let true_val: u64 = 6 * 1024 * 1024 * 1024 + 12_345;
        let wire = true_val as u32;
        let near = true_val - 70_000; // receiver last knew this
        assert_eq!(unwrap_u32_near(wire, near), true_val);
        // Slightly ahead also works (stale heartbeat reordering).
        assert_eq!(unwrap_u32_near(wire, true_val + 50_000), true_val);
    }

    #[test]
    fn unwrap_never_goes_negative() {
        assert_eq!(unwrap_u32_near(5, 0), 5);
        // A wire value "behind" zero clamps to zero rather than underflowing.
        assert_eq!(unwrap_u32_near(u32::MAX, 0), 0);
    }

    #[test]
    fn conn_key_is_stable_and_discriminating() {
        assert_eq!(conn_key(tuple(1)), conn_key(tuple(1)));
        assert_ne!(conn_key(tuple(1)), conn_key(tuple(2)));
        // Both servers compute the same key for the same client tuple.
        let on_primary = conn_key(tuple(40_000));
        let on_backup = conn_key(tuple(40_000));
        assert_eq!(on_primary, on_backup);
    }

    fn sample_v2(kind: HbFrameKind) -> HbFrame {
        HbFrame {
            kind,
            epoch: 0xdead_beef,
            link: 2,
            ack_epoch: 0x0bad_cafe,
            part: 0,
            parts: 1,
            acks: vec![41, 40, 39],
            hb: sample(),
        }
    }

    fn sample_v3(kind: HbFrameKind) -> HbFrame {
        HbFrame {
            part: 1,
            parts: 3,
            ..sample_v2(kind)
        }
    }

    #[test]
    fn v2_roundtrip() {
        for kind in [HbFrameKind::Full, HbFrameKind::Delta] {
            let f = sample_v2(kind);
            assert_eq!(HbFrame::decode(&f.encode()).unwrap(), f);
            assert_eq!(f.encode().len(), f.wire_len());
        }
    }

    #[test]
    fn v2_roundtrip_empty() {
        // A steady-state delta with nothing dirty: header + acks only.
        let f = HbFrame {
            kind: HbFrameKind::Delta,
            epoch: 1,
            link: 0,
            ack_epoch: 0,
            part: 0,
            parts: 1,
            acks: vec![0, 0],
            hb: HbPayload {
                seqno: 1,
                role: Role::Primary,
                rank: 0,
                conns: vec![],
                ping: None,
            },
        };
        assert_eq!(HbFrame::decode(&f.encode()).unwrap(), f);
        assert_eq!(f.wire_len(), HB_V2_HEADER_LEN + 8);
    }

    #[test]
    fn v2_truncation_rejected() {
        let wire = sample_v2(HbFrameKind::Delta).encode();
        assert_eq!(HbFrame::decode(&wire[..4]), Err(HbDecodeError));
        assert_eq!(HbFrame::decode(&wire[..wire.len() - 1]), Err(HbDecodeError));
    }

    #[test]
    fn v2_trailing_garbage_rejected() {
        let mut wire = sample_v2(HbFrameKind::Full).encode().to_vec();
        wire.push(0);
        assert_eq!(HbFrame::decode(&wire), Err(HbDecodeError));
    }

    #[test]
    fn v2_every_single_bit_flip_rejected() {
        let wire = sample_v2(HbFrameKind::Delta).encode().to_vec();
        for bit in 0..wire.len() * 8 {
            let mut flipped = wire.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                HbFrame::decode(&flipped),
                Err(HbDecodeError),
                "flipping bit {bit} went undetected"
            );
            // Nor may corruption smuggle a v2 frame through the dual
            // decoder as a valid v1 heartbeat (or anything else).
            assert_eq!(
                decode_any(&flipped),
                Err(HbDecodeError),
                "flipping bit {bit} survived decode_any"
            );
        }
    }

    #[test]
    fn decode_any_distinguishes_versions() {
        let v1 = sample();
        let v2 = sample_v2(HbFrameKind::Delta);
        let v3 = sample_v3(HbFrameKind::Delta);
        assert_eq!(decode_any(&v1.encode()).unwrap(), AnyHb::V1(v1));
        assert_eq!(decode_any(&v2.encode()).unwrap(), AnyHb::V2(v2));
        assert_eq!(decode_any(&v3.encode()).unwrap(), AnyHb::V2(v3));
    }

    #[test]
    fn v3_roundtrip() {
        for kind in [HbFrameKind::Full, HbFrameKind::Delta] {
            let f = sample_v3(kind);
            let wire = f.encode();
            assert_eq!(wire[0], HB_V3_VERSION);
            assert_eq!(HbFrame::decode(&wire).unwrap(), f);
            assert_eq!(wire.len(), f.wire_len());
        }
    }

    #[test]
    fn single_part_frames_keep_the_v2_encoding() {
        // The interop guarantee: a sender whose batch knob is off (or
        // whose round fits one frame) emits bytes a pre-batch receiver
        // accepts — `parts: 1` and the v2 wire format are the same
        // thing, not merely compatible.
        let f = sample_v2(HbFrameKind::Delta);
        let wire = f.encode();
        assert_eq!(wire[0], HB_V2_VERSION);
        assert_eq!(
            wire.len(),
            HB_V2_HEADER_LEN + 3 * 4 + 2 * HB_CONN_LEN + HB_PING_LEN
        );
        let back = HbFrame::decode(&wire).unwrap();
        assert_eq!((back.part, back.parts), (0, 1));
        assert_eq!(back, f);
    }

    #[test]
    fn v3_truncation_and_trailing_garbage_rejected() {
        let wire = sample_v3(HbFrameKind::Delta).encode();
        assert_eq!(HbFrame::decode(&wire[..4]), Err(HbDecodeError));
        assert_eq!(HbFrame::decode(&wire[..wire.len() - 1]), Err(HbDecodeError));
        let mut extended = wire.to_vec();
        extended.push(0);
        assert_eq!(HbFrame::decode(&extended), Err(HbDecodeError));
    }

    #[test]
    fn v3_non_canonical_batch_headers_rejected() {
        // Re-CRC a v3 frame with out-of-bounds part fields: the frame is
        // otherwise pristine, so only the canonical-batch check can
        // reject it.
        let good = sample_v3(HbFrameKind::Delta).encode().to_vec();
        for (part, parts) in [(3u16, 3u16), (7, 3), (0, 1), (0, 0), (1, 1)] {
            let mut wire = good.clone();
            wire[21..23].copy_from_slice(&part.to_be_bytes());
            wire[23..25].copy_from_slice(&parts.to_be_bytes());
            wire[25..29].copy_from_slice(&[0; 4]);
            let crc = crate::wire::crc32(&wire);
            wire[25..29].copy_from_slice(&crc.to_be_bytes());
            assert_eq!(
                HbFrame::decode(&wire),
                Err(HbDecodeError),
                "part {part}/{parts} accepted"
            );
        }
    }

    #[test]
    fn v3_every_single_bit_flip_rejected() {
        let wire = sample_v3(HbFrameKind::Delta).encode().to_vec();
        for bit in 0..wire.len() * 8 {
            let mut flipped = wire.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                HbFrame::decode(&flipped),
                Err(HbDecodeError),
                "flipping bit {bit} went undetected"
            );
            assert_eq!(
                decode_any(&flipped),
                Err(HbDecodeError),
                "flipping bit {bit} survived decode_any"
            );
        }
    }

    #[test]
    fn serial_capacity_arithmetic_matches_paper_scale() {
        // §3: at a 200 ms period, one connection costs ~0.8-1 kbit/s; the
        // 115.2 kbps serial line should fit on the order of 100
        // connections. With our 21-byte records + 8-byte header:
        let per_conn_bits_per_sec = (HB_CONN_LEN as f64 * 10.0) / 0.2; // 8N1 framing
        let capacity = 115_200.0 / per_conn_bits_per_sec;
        assert!(
            capacity > 80.0 && capacity < 130.0,
            "capacity estimate {capacity}"
        );
    }
}
