//! First-class invariant checking over chaos runs.
//!
//! A chaos run (see the `sttcp-apps` crate's `chaos` module) executes a
//! client workload against the server pair while a fault schedule fires.
//! Afterwards this module judges the run: it takes the two servers'
//! [`StTcpEvent`] logs plus the client's transcript, and an
//! [`Expectation`] derived from the schedule (what *could* legitimately
//! have happened given the injected faults), and checks the properties
//! ST-TCP promises regardless of fault timing:
//!
//! 1. **Byte-stream integrity** — the client never observes wrong bytes.
//!    TCP checksums plus missed-byte recovery make this unconditional.
//! 2. **No dual-active** — at most one server ever speaks for the
//!    service. Checked both directly (end-of-run activity) and causally:
//!    a takeover must be preceded by a STONITH from the taker or by the
//!    peer's own death.
//! 3. **At most one failure verdict** — a server declares its peer
//!    failed at most once, takes over at most once, fires STONITH at
//!    most once.
//! 4. **Bounded post-detection stall** — when the service is expected to
//!    survive, the client's longest outage is bounded (detection +
//!    takeover + retransmission, with allowance from the caller).
//! 5. **Unrecoverable ⇒ explicitly detected** — if the service is
//!    expected up but the client did not finish, the failure must be
//!    announced (a reset or a logged [`StTcpEvent::UnrecoverableGap`]),
//!    never a silent hang.
//! 6. **No false positives** — a schedule that injects nothing the
//!    detectors should react to (empty, or finite tap-side drops that
//!    recovery absorbs) must produce no verdict at all.
//!
//! The checker is deliberately *conservative*: the [`Expectation`] says
//! what is possible, not what must happen, so a legitimate-but-unlucky
//! run never reports a violation. Anything it does report is a real
//! protocol bug — the chaos harness then shrinks the schedule that
//! exposed it.

use core::fmt;

use simnet::time::{SimDuration, SimTime};

use crate::config::Role;
use crate::events::StTcpEvent;

/// What the invariant checker knows about one server after a run.
#[derive(Debug, Clone)]
pub struct ServerView {
    /// The role the server was configured with at start.
    pub configured_role: Role,
    /// The server's protocol event log.
    pub events: Vec<StTcpEvent>,
    /// When the *world* powered this node off (crash or STONITH), if it
    /// ever did. Taken from the simulation, not the node's own belief.
    pub powered_off_at: Option<SimTime>,
    /// True if the server ended the run as a cold standby (rebooted,
    /// state lost, passive).
    pub cold_standby: bool,
    /// True if the server ended the run able to emit client-visible
    /// traffic (powered, not cold, acting primary).
    pub active_at_end: bool,
}

/// What the invariant checker knows about the client after a run.
#[derive(Debug, Clone, Default)]
pub struct ClientView {
    /// Bytes verified correct against the expected stream.
    pub bytes_ok: u64,
    /// Bytes that contradicted the expected stream. Must be zero, always.
    pub integrity_violations: u64,
    /// Connection resets the client observed.
    pub resets: u64,
    /// True if the workload ran to its planned completion.
    pub finished: bool,
    /// The longest gap between consecutive client-visible progress
    /// events.
    pub longest_stall: SimDuration,
}

/// What the fault schedule makes legitimately possible. Derived from the
/// schedule alone (see `sttcp-apps::chaos::Expectation` computation) —
/// conservative toward "possible".
#[derive(Debug, Clone)]
pub struct Expectation {
    /// Some fault could have made the pair lose all service (for
    /// example, both servers crashed, or the surviving server's client
    /// path was cut). When false, the client finishing is mandatory.
    pub service_may_be_lost: bool,
    /// Client bytes acked by the primary may have been lost to the
    /// backup forever (tap loss or corruption combined with a primary
    /// crash): an [`StTcpEvent::UnrecoverableGap`] reset is legitimate.
    pub unrecoverable_gap_possible: bool,
    /// An application crash with RST cleanup was injected: the client
    /// may see an abortive close.
    pub abortive_close_possible: bool,
    /// Failure verdicts are legitimate (some injected fault could make a
    /// correct detector fire). When false — empty or tap-only-drop
    /// schedules — any verdict is a false positive.
    pub verdicts_possible: bool,
    /// Bound on [`ClientView::longest_stall`] when the run otherwise
    /// succeeds; `None` disables the check (schedules whose loss bursts
    /// can stall the client arbitrarily via RTO backoff).
    pub max_stall: Option<SimDuration>,
    /// The schedule reboots a crashed server into a re-integration join
    /// (`StTcpConfig::reintegrate`). A server may then legitimately see
    /// *two* failure epochs — one before its crash or its peer's, one
    /// after redundancy is restored — so the at-most-one-verdict
    /// invariant widens to at most one per epoch.
    pub reintegrate: bool,
    /// The schedule armed byzantine heartbeat corruption on this
    /// (configured) side. The *honest* side may legitimately condemn the
    /// liar; the liar itself — whose inbound evidence is untouched — must
    /// never fire a verdict against its healthy peer.
    pub byzantine: Option<Role>,
}

impl Expectation {
    /// Expectation for a run with no faults at all: everything strict.
    pub fn fault_free(max_stall: SimDuration) -> Expectation {
        Expectation {
            service_may_be_lost: false,
            unrecoverable_gap_possible: false,
            abortive_close_possible: false,
            verdicts_possible: false,
            max_stall: Some(max_stall),
            reintegrate: false,
            byzantine: None,
        }
    }
}

/// What a pool-mode fault schedule makes legitimately possible —
/// [`Expectation`]'s N-replica counterpart, consumed by [`check_pool`].
#[derive(Debug, Clone)]
pub struct PoolExpectation {
    /// Some fault could have killed every pool member (or cut the client
    /// path); when false the client finishing is mandatory.
    pub service_may_be_lost: bool,
    /// Acked client bytes may be gone from every survivor: an
    /// [`StTcpEvent::UnrecoverableGap`] reset is legitimate.
    pub unrecoverable_gap_possible: bool,
    /// Failure verdicts (fence rounds, takeovers) are legitimate.
    pub verdicts_possible: bool,
    /// Upper bound on takeovers across the whole pool (one per active
    /// kill the schedule performs).
    pub max_takeovers: u32,
    /// Bound on [`ClientView::longest_stall`] when the run finishes;
    /// `None` disables the check.
    pub max_stall: Option<SimDuration>,
}

/// Checks the pool-mode invariants over one finished run.
///
/// `views` holds every pool member in any order. On top of the pairwise
/// properties (integrity, no dual-active, bounded stall, no silent
/// failure, no false positives) the pool adds **quorum-fence-precedes-
/// takeover**: a member may only take over after logging a
/// [`StTcpEvent::FenceQuorumReached`] against the old active — rank
/// order and fencing are worthless if a taker can skip the vote.
pub fn check_pool(views: &[ServerView], client: &ClientView, exp: &PoolExpectation) -> Report {
    let mut violations = Vec::new();

    // 1. Byte-stream integrity: unconditional.
    if client.integrity_violations > 0 {
        violations.push(Violation {
            invariant: "byte-stream-integrity",
            detail: format!(
                "client verified {} bytes but saw {} contradicting its expected stream",
                client.bytes_ok, client.integrity_violations
            ),
        });
    }

    // 2. No dual-active, direct form: at most one member ends active.
    let actives = views.iter().filter(|v| v.active_at_end).count();
    if actives > 1 {
        violations.push(Violation {
            invariant: "no-dual-active",
            detail: format!("{actives} pool members ended the run active for the service IP"),
        });
    }

    // 3. Quorum fence and STONITH precede every takeover, and takeovers
    // stay within the schedule's budget.
    let mut total_takeovers = 0u32;
    for (i, v) in views.iter().enumerate() {
        let takeovers = count_events(&v.events, |e| matches!(e, StTcpEvent::TookOver { .. }));
        total_takeovers += takeovers as u32;
        let Some(took_at) = first_time(&v.events, |e| matches!(e, StTcpEvent::TookOver { .. }))
        else {
            continue;
        };
        let quorum_at = first_time(&v.events, |e| {
            matches!(e, StTcpEvent::FenceQuorumReached { .. })
        });
        if quorum_at.is_none_or(|t| t > took_at) {
            violations.push(Violation {
                invariant: "quorum-fence-precedes-takeover",
                detail: format!(
                    "member #{i} took over at {took_at} without first reaching a fence \
                     quorum (quorum: {quorum_at:?})"
                ),
            });
        }
        let stonith_at = first_time(&v.events, |e| matches!(e, StTcpEvent::StonithIssued { .. }));
        if stonith_at.is_none_or(|t| t > took_at) {
            violations.push(Violation {
                invariant: "stonith-precedes-takeover",
                detail: format!(
                    "member #{i} took over at {took_at} without first issuing STONITH \
                     (stonith: {stonith_at:?})"
                ),
            });
        }
        if takeovers > 1 {
            violations.push(Violation {
                invariant: "at-most-one-verdict",
                detail: format!("member #{i} took over {takeovers} times in one incarnation"),
            });
        }
    }
    if total_takeovers > exp.max_takeovers {
        violations.push(Violation {
            invariant: "at-most-one-verdict",
            detail: format!(
                "{total_takeovers} takeovers across the pool (schedule budget {})",
                exp.max_takeovers
            ),
        });
    }

    // 4. False positives: a fault-free pool schedule must stay silent.
    if !exp.verdicts_possible {
        for (i, v) in views.iter().enumerate() {
            let verdicts = count_events(&v.events, |e| {
                matches!(
                    e,
                    StTcpEvent::PeerDeclaredFailed { .. }
                        | StTcpEvent::TookOver { .. }
                        | StTcpEvent::StonithIssued { .. }
                        | StTcpEvent::FenceQuorumReached { .. }
                        | StTcpEvent::WentNonFt { .. }
                )
            });
            if verdicts > 0 {
                violations.push(Violation {
                    invariant: "no-false-positive",
                    detail: format!(
                        "member #{i} fired {verdicts} verdict event(s) though the schedule \
                         injected nothing a correct detector reacts to"
                    ),
                });
            }
        }
        if client.resets > 0 {
            violations.push(Violation {
                invariant: "no-false-positive",
                detail: format!(
                    "client saw {} reset(s) under a verdict-free schedule",
                    client.resets
                ),
            });
        }
    }

    // 5. Unrecoverable ⇒ explicitly detected, never silent.
    if !exp.service_may_be_lost && !client.finished {
        let announced = client.resets > 0
            || views
                .iter()
                .flat_map(|v| v.events.iter())
                .any(|e| matches!(e, StTcpEvent::UnrecoverableGap { .. }));
        if !announced {
            violations.push(Violation {
                invariant: "no-silent-failure",
                detail: "service was expected to survive, yet the client neither finished \
                         nor was reset — it was left hanging silently"
                    .to_string(),
            });
        } else if !exp.unrecoverable_gap_possible {
            violations.push(Violation {
                invariant: "unrecoverable-only-when-possible",
                detail: "client was reset although the schedule permits no data-loss path"
                    .to_string(),
            });
        }
    }

    // 6. Bounded post-detection stall, only for runs that completed.
    if let Some(bound) = exp.max_stall {
        if client.finished && client.longest_stall > bound {
            violations.push(Violation {
                invariant: "bounded-stall",
                detail: format!("client stalled {} (bound {})", client.longest_stall, bound),
            });
        }
    }

    let any_verdict = views.iter().any(|v| {
        v.events.iter().any(|e| {
            matches!(
                e,
                StTcpEvent::PeerDeclaredFailed { .. }
                    | StTcpEvent::WentNonFt { .. }
                    | StTcpEvent::TookOver { .. }
            )
        })
    });
    let any_unrecoverable = views
        .iter()
        .flat_map(|v| v.events.iter())
        .any(|e| matches!(e, StTcpEvent::UnrecoverableGap { .. }));

    let outcome = if !violations.is_empty() {
        Outcome::Violation
    } else if !client.finished {
        if any_unrecoverable || client.resets > 0 {
            Outcome::DetectedUnrecoverable
        } else {
            Outcome::ServiceLost
        }
    } else if any_unrecoverable {
        Outcome::DetectedUnrecoverable
    } else if any_verdict {
        Outcome::Recovered
    } else {
        Outcome::Clean
    };

    Report {
        outcome,
        violations,
    }
}

/// Classification of a finished chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// No fault observable by the client, no verdict fired.
    Clean,
    /// A failure was detected and masked; the client finished.
    Recovered,
    /// A failure was detected but could not be masked; the client was
    /// told explicitly (reset / unrecoverable-gap). Legitimate per the
    /// paper's output-commit caveat.
    DetectedUnrecoverable,
    /// The schedule destroyed all service (for example, both servers
    /// down) — the client could not finish, as expected.
    ServiceLost,
    /// An invariant was violated: a protocol bug.
    Violation,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::Clean => "clean",
            Outcome::Recovered => "recovered",
            Outcome::DetectedUnrecoverable => "detected-unrecoverable",
            Outcome::ServiceLost => "service-lost",
            Outcome::Violation => "VIOLATION",
        };
        write!(f, "{s}")
    }
}

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the invariant (e.g. `"no-dual-active"`).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// The checker's verdict on a run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Overall classification.
    pub outcome: Outcome,
    /// Every violated invariant (empty unless `outcome` is
    /// [`Outcome::Violation`]).
    pub violations: Vec<Violation>,
}

impl Report {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn count_events(events: &[StTcpEvent], mut pred: impl FnMut(&StTcpEvent) -> bool) -> usize {
    events.iter().filter(|e| pred(e)).count()
}

fn first_time(events: &[StTcpEvent], mut pred: impl FnMut(&StTcpEvent) -> bool) -> Option<SimTime> {
    events.iter().find(|e| pred(e)).map(|e| e.at())
}

/// Checks every invariant over one finished run.
///
/// `primary` and `backup` are the servers as *configured* at start (the
/// backup may well have become primary during the run).
pub fn check(
    primary: &ServerView,
    backup: &ServerView,
    client: &ClientView,
    exp: &Expectation,
) -> Report {
    let mut violations = Vec::new();

    // 1. Byte-stream integrity: unconditional. Corruption, loss, and
    // takeover may slow or reset the client but may never hand it wrong
    // bytes.
    if client.integrity_violations > 0 {
        violations.push(Violation {
            invariant: "byte-stream-integrity",
            detail: format!(
                "client verified {} bytes but saw {} contradicting its expected stream",
                client.bytes_ok, client.integrity_violations
            ),
        });
    }

    // 2a. No dual-active, direct form.
    if primary.active_at_end && backup.active_at_end {
        violations.push(Violation {
            invariant: "no-dual-active",
            detail: "both servers ended the run active for the service IP".to_string(),
        });
    }

    // 2b. No dual-active, causal form: STONITH (or the peer's prior
    // death) precedes every takeover.
    for (me, peer, label) in [(backup, primary, "backup"), (primary, backup, "primary")] {
        let Some(took_at) = first_time(&me.events, |e| matches!(e, StTcpEvent::TookOver { .. }))
        else {
            continue;
        };
        let stonith_at = first_time(&me.events, |e| {
            matches!(e, StTcpEvent::StonithIssued { .. })
        });
        let stonith_ok = stonith_at.is_some_and(|t| t <= took_at);
        let peer_dead_first = peer.powered_off_at.is_some_and(|t| t <= took_at);
        if !stonith_ok && !peer_dead_first {
            violations.push(Violation {
                invariant: "stonith-precedes-takeover",
                detail: format!(
                    "{label} took over at {took_at} without first issuing STONITH \
                     (stonith: {stonith_at:?}) or its peer being down \
                     (peer off: {:?})",
                    peer.powered_off_at
                ),
            });
        }
    }

    // 3. At most one failure verdict / takeover / STONITH per server —
    // per failure epoch. A re-integration schedule legitimately runs two
    // epochs (fail over, restore redundancy, fail over again), so each
    // counter may reach two; anything beyond is flapping.
    let verdict_cap = if exp.reintegrate { 2 } else { 1 };
    for (sv, label) in [(primary, "primary"), (backup, "backup")] {
        for (what, n) in [
            (
                "peer-declared-failed",
                count_events(&sv.events, |e| {
                    matches!(e, StTcpEvent::PeerDeclaredFailed { .. })
                }),
            ),
            (
                "took-over",
                count_events(&sv.events, |e| matches!(e, StTcpEvent::TookOver { .. })),
            ),
            (
                "stonith-issued",
                count_events(&sv.events, |e| {
                    matches!(e, StTcpEvent::StonithIssued { .. })
                }),
            ),
        ] {
            if n > verdict_cap {
                violations.push(Violation {
                    invariant: "at-most-one-verdict",
                    detail: format!("{label} logged {what} {n} times (cap {verdict_cap})"),
                });
            }
        }
    }

    // 3b. Byzantine containment: the server armed with corrupt outgoing
    // heartbeats keeps receiving the honest peer's truthful ones, so it
    // has no legitimate grounds to condemn anyone. Only the honest side
    // may fire the verdict that quarantines the liar.
    if let Some(liar_role) = exp.byzantine {
        let (liar, label) = match liar_role {
            Role::Primary => (primary, "primary"),
            Role::Backup => (backup, "backup"),
        };
        let n = count_events(&liar.events, |e| {
            matches!(e, StTcpEvent::PeerDeclaredFailed { .. })
        });
        if n > 0 {
            violations.push(Violation {
                invariant: "byzantine-liar-verdict",
                detail: format!(
                    "the lying {label} declared its honest peer failed {n} time(s); \
                     its own inbound evidence never justified a verdict"
                ),
            });
        }
    }

    // 4. False positives: with no verdict-provoking fault injected, no
    // verdict may fire and the client must finish untouched.
    if !exp.verdicts_possible {
        for (sv, label) in [(primary, "primary"), (backup, "backup")] {
            let verdicts = count_events(&sv.events, |e| {
                matches!(
                    e,
                    StTcpEvent::PeerDeclaredFailed { .. }
                        | StTcpEvent::WentNonFt { .. }
                        | StTcpEvent::TookOver { .. }
                        | StTcpEvent::StonithIssued { .. }
                )
            });
            if verdicts > 0 {
                violations.push(Violation {
                    invariant: "no-false-positive",
                    detail: format!(
                        "{label} fired {verdicts} verdict event(s) though the schedule \
                         injected nothing a correct detector reacts to"
                    ),
                });
            }
        }
        if client.resets > 0 {
            violations.push(Violation {
                invariant: "no-false-positive",
                detail: format!(
                    "client saw {} reset(s) under a verdict-free schedule",
                    client.resets
                ),
            });
        }
    }

    // 5. Unrecoverable ⇒ explicitly detected, never silent. If service
    // was expected to survive and the client did not finish, someone
    // must have said so out loud.
    if !exp.service_may_be_lost && !client.finished {
        let announced = client.resets > 0
            || primary
                .events
                .iter()
                .chain(backup.events.iter())
                .any(|e| matches!(e, StTcpEvent::UnrecoverableGap { .. }));
        if !announced {
            violations.push(Violation {
                invariant: "no-silent-failure",
                detail: "service was expected to survive, yet the client neither finished \
                         nor was reset — it was left hanging silently"
                    .to_string(),
            });
        } else if !exp.unrecoverable_gap_possible && !exp.abortive_close_possible {
            violations.push(Violation {
                invariant: "unrecoverable-only-when-possible",
                detail: "client was reset although the schedule permits no data-loss or \
                         abortive-close path"
                    .to_string(),
            });
        }
    }

    // 6. Bounded post-detection stall, only for runs that completed.
    if let Some(bound) = exp.max_stall {
        if client.finished && client.longest_stall > bound {
            violations.push(Violation {
                invariant: "bounded-stall",
                detail: format!("client stalled {} (bound {})", client.longest_stall, bound),
            });
        }
    }

    let any_verdict = |sv: &ServerView| {
        sv.events.iter().any(|e| {
            matches!(
                e,
                StTcpEvent::PeerDeclaredFailed { .. }
                    | StTcpEvent::WentNonFt { .. }
                    | StTcpEvent::TookOver { .. }
            )
        })
    };
    let any_unrecoverable = primary
        .events
        .iter()
        .chain(backup.events.iter())
        .any(|e| matches!(e, StTcpEvent::UnrecoverableGap { .. }));

    let outcome = if !violations.is_empty() {
        Outcome::Violation
    } else if !client.finished {
        if any_unrecoverable || client.resets > 0 {
            Outcome::DetectedUnrecoverable
        } else {
            Outcome::ServiceLost
        }
    } else if any_unrecoverable {
        Outcome::DetectedUnrecoverable
    } else if any_verdict(primary) || any_verdict(backup) {
        Outcome::Recovered
    } else {
        Outcome::Clean
    };

    Report {
        outcome,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{FailureReason, HbLink};

    fn server(role: Role) -> ServerView {
        ServerView {
            configured_role: role,
            events: Vec::new(),
            powered_off_at: None,
            cold_standby: false,
            active_at_end: role == Role::Primary,
        }
    }

    fn ok_client() -> ClientView {
        ClientView {
            bytes_ok: 1_000_000,
            integrity_violations: 0,
            resets: 0,
            finished: true,
            longest_stall: SimDuration::from_millis(120),
        }
    }

    fn strict() -> Expectation {
        Expectation::fault_free(SimDuration::from_secs(2))
    }

    fn crashy() -> Expectation {
        Expectation {
            service_may_be_lost: false,
            unrecoverable_gap_possible: false,
            abortive_close_possible: false,
            verdicts_possible: true,
            max_stall: Some(SimDuration::from_secs(5)),
            reintegrate: false,
            byzantine: None,
        }
    }

    fn pool_exp() -> PoolExpectation {
        PoolExpectation {
            service_may_be_lost: false,
            unrecoverable_gap_possible: false,
            verdicts_possible: true,
            max_takeovers: 2,
            max_stall: Some(SimDuration::from_secs(5)),
        }
    }

    #[test]
    fn clean_run_is_clean() {
        let r = check(
            &server(Role::Primary),
            &server(Role::Backup),
            &ok_client(),
            &strict(),
        );
        assert!(r.ok());
        assert_eq!(r.outcome, Outcome::Clean);
    }

    #[test]
    fn integrity_violation_always_fires() {
        let mut c = ok_client();
        c.integrity_violations = 3;
        let r = check(&server(Role::Primary), &server(Role::Backup), &c, &crashy());
        assert_eq!(r.outcome, Outcome::Violation);
        assert_eq!(r.violations[0].invariant, "byte-stream-integrity");
    }

    #[test]
    fn dual_active_detected() {
        let p = server(Role::Primary);
        let mut b = server(Role::Backup);
        b.active_at_end = true;
        let r = check(&p, &b, &ok_client(), &crashy());
        assert_eq!(r.outcome, Outcome::Violation);
        assert!(r.violations.iter().any(|v| v.invariant == "no-dual-active"));
    }

    #[test]
    fn takeover_without_stonith_or_dead_peer_is_violation() {
        let p = server(Role::Primary);
        let mut b = server(Role::Backup);
        b.events = vec![
            StTcpEvent::PeerDeclaredFailed {
                reason: FailureReason::HbBothLinksDown,
                at: SimTime::from_millis(700),
            },
            StTcpEvent::TookOver {
                at: SimTime::from_millis(720),
            },
        ];
        let r = check(&p, &b, &ok_client(), &crashy());
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "stonith-precedes-takeover"));
    }

    #[test]
    fn proper_takeover_with_stonith_is_recovered() {
        let mut p = server(Role::Primary);
        p.powered_off_at = Some(SimTime::from_millis(500));
        p.active_at_end = false;
        let mut b = server(Role::Backup);
        b.events = vec![
            StTcpEvent::PeerDeclaredFailed {
                reason: FailureReason::HbBothLinksDown,
                at: SimTime::from_millis(1100),
            },
            StTcpEvent::StonithIssued {
                at: SimTime::from_millis(1120),
            },
            StTcpEvent::TookOver {
                at: SimTime::from_millis(1125),
            },
        ];
        b.active_at_end = true;
        let r = check(&p, &b, &ok_client(), &crashy());
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert_eq!(r.outcome, Outcome::Recovered);
    }

    #[test]
    fn takeover_after_peer_crash_without_stonith_is_fine() {
        // The peer was already down (world crashed it); STONITH of a dead
        // node is optional.
        let mut p = server(Role::Primary);
        p.powered_off_at = Some(SimTime::from_millis(300));
        p.active_at_end = false;
        let mut b = server(Role::Backup);
        b.events = vec![StTcpEvent::TookOver {
            at: SimTime::from_millis(900),
        }];
        b.active_at_end = true;
        let r = check(&p, &b, &ok_client(), &crashy());
        assert!(r.ok(), "violations: {:?}", r.violations);
    }

    #[test]
    fn double_verdict_is_violation() {
        let mut p = server(Role::Primary);
        p.events = vec![
            StTcpEvent::PeerDeclaredFailed {
                reason: FailureReason::AppLagTime,
                at: SimTime::from_millis(100),
            },
            StTcpEvent::PeerDeclaredFailed {
                reason: FailureReason::HbBothLinksDown,
                at: SimTime::from_millis(200),
            },
        ];
        let r = check(&p, &server(Role::Backup), &ok_client(), &crashy());
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "at-most-one-verdict"));
    }

    #[test]
    fn reintegration_widens_verdict_cap_to_two_epochs() {
        let mut p = server(Role::Primary);
        p.powered_off_at = Some(SimTime::from_millis(500));
        p.active_at_end = false;
        let mut b = server(Role::Backup);
        b.events = vec![
            StTcpEvent::PeerDeclaredFailed {
                reason: FailureReason::HbBothLinksDown,
                at: SimTime::from_millis(1100),
            },
            StTcpEvent::StonithIssued {
                at: SimTime::from_millis(1120),
            },
            StTcpEvent::TookOver {
                at: SimTime::from_millis(1125),
            },
            StTcpEvent::ReintegrationCompleted {
                at: SimTime::from_millis(3000),
            },
            StTcpEvent::PeerDeclaredFailed {
                reason: FailureReason::HbBothLinksDown,
                at: SimTime::from_millis(6100),
            },
            StTcpEvent::StonithIssued {
                at: SimTime::from_millis(6120),
            },
        ];
        b.active_at_end = true;

        // Two epochs of verdicts under a plain crash expectation: flapping.
        let r = check(&p, &b, &ok_client(), &crashy());
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "at-most-one-verdict"));

        // The same log under a re-integration schedule is legitimate.
        let mut exp = crashy();
        exp.reintegrate = true;
        let r2 = check(&p, &b, &ok_client(), &exp);
        assert!(r2.ok(), "violations: {:?}", r2.violations);
        assert_eq!(r2.outcome, Outcome::Recovered);

        // A third verdict is flapping even with re-integration.
        b.events.push(StTcpEvent::PeerDeclaredFailed {
            reason: FailureReason::AppLagTime,
            at: SimTime::from_millis(9000),
        });
        let r3 = check(&p, &b, &ok_client(), &exp);
        assert!(r3
            .violations
            .iter()
            .any(|v| v.invariant == "at-most-one-verdict"));
    }

    #[test]
    fn false_positive_detected_on_benign_schedule() {
        let mut p = server(Role::Primary);
        p.events = vec![StTcpEvent::WentNonFt {
            reason: FailureReason::HbBothLinksDown,
            at: SimTime::from_millis(650),
        }];
        let r = check(&p, &server(Role::Backup), &ok_client(), &strict());
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "no-false-positive"));
        // The same events under a crashy schedule are fine.
        let r2 = check(&p, &server(Role::Backup), &ok_client(), &crashy());
        assert!(r2.ok());
        assert_eq!(r2.outcome, Outcome::Recovered);
    }

    #[test]
    fn silent_hang_is_violation_but_announced_reset_is_not() {
        let mut c = ok_client();
        c.finished = false;
        let r = check(&server(Role::Primary), &server(Role::Backup), &c, &crashy());
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "no-silent-failure"));

        // Announced via UnrecoverableGap on the backup: legitimate if the
        // schedule makes a gap possible.
        let mut exp = crashy();
        exp.unrecoverable_gap_possible = true;
        let mut b = server(Role::Backup);
        b.events = vec![StTcpEvent::UnrecoverableGap {
            conn: 1,
            missing_from: 4_096,
            at: SimTime::from_millis(800),
        }];
        let mut c2 = ok_client();
        c2.finished = false;
        c2.resets = 1;
        let r2 = check(&server(Role::Primary), &b, &c2, &exp);
        assert!(r2.ok(), "violations: {:?}", r2.violations);
        assert_eq!(r2.outcome, Outcome::DetectedUnrecoverable);
    }

    #[test]
    fn reset_without_any_loss_path_is_violation() {
        let mut c = ok_client();
        c.finished = false;
        c.resets = 1;
        let r = check(&server(Role::Primary), &server(Role::Backup), &c, &crashy());
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "unrecoverable-only-when-possible"));
    }

    #[test]
    fn service_lost_when_expected() {
        let mut exp = crashy();
        exp.service_may_be_lost = true;
        let mut c = ok_client();
        c.finished = false;
        let mut p = server(Role::Primary);
        p.powered_off_at = Some(SimTime::from_millis(100));
        p.active_at_end = false;
        let mut b = server(Role::Backup);
        b.powered_off_at = Some(SimTime::from_millis(200));
        b.active_at_end = false;
        let r = check(&p, &b, &c, &exp);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert_eq!(r.outcome, Outcome::ServiceLost);
    }

    #[test]
    fn stall_bound_enforced_only_when_finished() {
        let mut c = ok_client();
        c.longest_stall = SimDuration::from_secs(30);
        let r = check(&server(Role::Primary), &server(Role::Backup), &c, &crashy());
        assert!(r.violations.iter().any(|v| v.invariant == "bounded-stall"));

        let mut exp = crashy();
        exp.max_stall = None;
        let r2 = check(&server(Role::Primary), &server(Role::Backup), &c, &exp);
        assert!(r2.ok());
    }

    #[test]
    fn hb_link_events_alone_are_not_verdicts() {
        let mut p = server(Role::Primary);
        p.events = vec![
            StTcpEvent::HbLinkDown {
                link: HbLink::Ip,
                at: SimTime::from_millis(400),
            },
            StTcpEvent::HbLinkUp {
                link: HbLink::Ip,
                at: SimTime::from_millis(900),
            },
        ];
        let r = check(&p, &server(Role::Backup), &ok_client(), &strict());
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert_eq!(r.outcome, Outcome::Clean);
    }

    #[test]
    fn byzantine_liar_must_not_fire_verdicts() {
        // The honest backup condemns the lying primary: legitimate.
        let mut exp = crashy();
        exp.byzantine = Some(Role::Primary);
        let mut p = server(Role::Primary);
        p.powered_off_at = Some(SimTime::from_millis(900));
        p.active_at_end = false;
        let mut b = server(Role::Backup);
        b.events = vec![
            StTcpEvent::ByzantineHbRejected {
                at: SimTime::from_millis(400),
            },
            StTcpEvent::PeerDeclaredFailed {
                reason: FailureReason::HbBothLinksDown,
                at: SimTime::from_millis(1000),
            },
            StTcpEvent::StonithIssued {
                at: SimTime::from_millis(1000),
            },
            StTcpEvent::TookOver {
                at: SimTime::from_millis(1050),
            },
        ];
        b.active_at_end = true;
        let r = check(&p, &b, &ok_client(), &exp);
        assert!(r.ok(), "violations: {:?}", r.violations);

        // The liar condemning its honest peer is the bug this invariant
        // exists for.
        let mut p2 = server(Role::Primary);
        p2.events = vec![StTcpEvent::PeerDeclaredFailed {
            reason: FailureReason::AppLagBytes,
            at: SimTime::from_millis(700),
        }];
        let r2 = check(&p2, &server(Role::Backup), &ok_client(), &exp);
        assert!(r2
            .violations
            .iter()
            .any(|v| v.invariant == "byzantine-liar-verdict"));
    }

    #[test]
    fn pool_takeover_without_quorum_is_violation() {
        let mut v0 = server(Role::Primary);
        v0.powered_off_at = Some(SimTime::from_millis(500));
        v0.active_at_end = false;
        let mut v1 = server(Role::Backup);
        v1.events = vec![
            StTcpEvent::StonithIssued {
                at: SimTime::from_millis(1100),
            },
            StTcpEvent::TookOver {
                at: SimTime::from_millis(1200),
            },
        ];
        v1.active_at_end = true;
        let v2 = server(Role::Backup);
        let r = check_pool(&[v0, v1, v2], &ok_client(), &pool_exp());
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "quorum-fence-precedes-takeover"));
    }

    #[test]
    fn pool_quorum_checked_takeover_is_recovered() {
        let mut v0 = server(Role::Primary);
        v0.powered_off_at = Some(SimTime::from_millis(500));
        v0.active_at_end = false;
        let mut v1 = server(Role::Backup);
        v1.events = vec![
            StTcpEvent::FenceRequested {
                target_rank: 0,
                epoch: 1,
                at: SimTime::from_millis(1000),
            },
            StTcpEvent::FenceQuorumReached {
                target_rank: 0,
                votes: 2,
                at: SimTime::from_millis(1100),
            },
            StTcpEvent::PoolMemberFenced {
                rank: 0,
                at: SimTime::from_millis(1100),
            },
            StTcpEvent::PeerDeclaredFailed {
                reason: FailureReason::HbBothLinksDown,
                at: SimTime::from_millis(1100),
            },
            StTcpEvent::StonithIssued {
                at: SimTime::from_millis(1100),
            },
            StTcpEvent::TookOver {
                at: SimTime::from_millis(1200),
            },
        ];
        v1.active_at_end = true;
        let mut v2 = server(Role::Backup);
        v2.events = vec![StTcpEvent::PoolMemberFenced {
            rank: 0,
            at: SimTime::from_millis(1101),
        }];
        let r = check_pool(&[v0, v1, v2], &ok_client(), &pool_exp());
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert_eq!(r.outcome, Outcome::Recovered);
    }

    #[test]
    fn pool_dual_active_and_takeover_budget_enforced() {
        let mk_taker = |t: u64| {
            let mut v = server(Role::Backup);
            v.events = vec![
                StTcpEvent::FenceQuorumReached {
                    target_rank: 0,
                    votes: 2,
                    at: SimTime::from_millis(t),
                },
                StTcpEvent::StonithIssued {
                    at: SimTime::from_millis(t),
                },
                StTcpEvent::TookOver {
                    at: SimTime::from_millis(t + 50),
                },
            ];
            v.active_at_end = true;
            v
        };
        let v1 = mk_taker(1000);
        let v2 = mk_taker(2000);
        let v3 = mk_taker(3000);
        let r = check_pool(&[v1, v2, v3], &ok_client(), &pool_exp());
        assert!(r.violations.iter().any(|v| v.invariant == "no-dual-active"));
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "at-most-one-verdict"));
    }

    #[test]
    fn pool_false_positive_on_quiet_schedule() {
        let mut exp = pool_exp();
        exp.verdicts_possible = false;
        let mut v1 = server(Role::Backup);
        v1.events = vec![StTcpEvent::FenceQuorumReached {
            target_rank: 0,
            votes: 2,
            at: SimTime::from_millis(800),
        }];
        let r = check_pool(&[server(Role::Primary), v1], &ok_client(), &exp);
        assert!(r
            .violations
            .iter()
            .any(|v| v.invariant == "no-false-positive"));
    }
}
