//! Per-link heartbeat liveness monitoring.
//!
//! One [`LinkMonitor`] per heartbeat link (IP and serial). A link is
//! *alive* while heartbeats keep arriving within the timeout; the
//! combination of the two monitors drives the paper's failure taxonomy:
//! both dead ⇒ peer crashed (Table 1 row 1); IP dead + serial alive ⇒
//! local network failure (row 4); both alive ⇒ use the heartbeat contents
//! (rows 2, 3, 5).

use simnet::time::{SimDuration, SimTime};

/// Liveness tracker for one heartbeat link.
#[derive(Debug, Clone)]
pub struct LinkMonitor {
    timeout: SimDuration,
    last_rx: Option<SimTime>,
    started_at: SimTime,
}

impl LinkMonitor {
    /// Creates a monitor. Until the first heartbeat arrives, the link is
    /// given `timeout` of grace from `started_at`.
    pub fn new(timeout: SimDuration, started_at: SimTime) -> LinkMonitor {
        LinkMonitor {
            timeout,
            last_rx: None,
            started_at,
        }
    }

    /// Records a heartbeat arrival.
    pub fn on_heartbeat(&mut self, now: SimTime) {
        self.last_rx = Some(now);
    }

    /// The last heartbeat arrival, if any.
    pub fn last_rx(&self) -> Option<SimTime> {
        self.last_rx
    }

    /// True while the link is considered alive at `now`.
    pub fn is_alive(&self, now: SimTime) -> bool {
        let anchor = self.last_rx.unwrap_or(self.started_at);
        now.saturating_since(anchor) < self.timeout
    }

    /// When the link will be declared dead if no further heartbeat
    /// arrives.
    pub fn deadline(&self) -> SimTime {
        let anchor = self.last_rx.unwrap_or(self.started_at);
        anchor + self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn alive_within_timeout() {
        let mut m = LinkMonitor::new(SimDuration::from_millis(600), t(0));
        m.on_heartbeat(t(100));
        assert!(m.is_alive(t(100)));
        assert!(m.is_alive(t(699)));
        assert!(!m.is_alive(t(700)));
    }

    #[test]
    fn grace_period_before_first_heartbeat() {
        let m = LinkMonitor::new(SimDuration::from_millis(600), t(1_000));
        assert!(m.is_alive(t(1_000)));
        assert!(m.is_alive(t(1_599)));
        assert!(!m.is_alive(t(1_600)));
        assert_eq!(m.last_rx(), None);
    }

    #[test]
    fn recovery_after_outage() {
        let mut m = LinkMonitor::new(SimDuration::from_millis(600), t(0));
        m.on_heartbeat(t(100));
        assert!(!m.is_alive(t(800)));
        m.on_heartbeat(t(900));
        assert!(m.is_alive(t(1_000)));
    }

    #[test]
    fn deadline_tracks_last_rx() {
        let mut m = LinkMonitor::new(SimDuration::from_millis(600), t(0));
        assert_eq!(m.deadline(), t(600));
        m.on_heartbeat(t(250));
        assert_eq!(m.deadline(), t(850));
    }
}
