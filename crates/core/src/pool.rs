//! N-replica standby pool: membership, rank order, and quorum fencing.
//!
//! The paper's demonstration runs one primary and one backup. This
//! module generalises the pair to a *pool* of one active plus K ≥ 2
//! backups, all tapping the client's traffic through the multicast tap.
//! Every member carries a static **rank** (0 = the initially active
//! server); on an active failure the lowest-rank live backup takes over
//! — but only after a **quorum-checked fence**: a majority of the
//! surviving pool members must confirm the target dead on both heartbeat
//! links before the candidate STONITHs it and proceeds. The pairwise
//! protocol's single-shot STONITH is the degenerate two-member case
//! (quorum of one — the candidate's own vote).
//!
//! Quorum prevents split-brain under asymmetric heartbeat partitions: a
//! backup that merely lost *its own* links to the active can never
//! assemble a majority that includes members who still hear the active,
//! so it can never fence, never STONITH, and never take over.
//!
//! The state here is bookkeeping only — the protocol driving it (fence
//! rounds, votes, commits, takeover, re-integration with rank
//! reassignment) lives in [`crate::server`], wired into the heartbeat
//! and control channels.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use simnet::node::{NodeId, SerialPortId};
use simnet::time::{SimDuration, SimTime};

use crate::config::Role;
use crate::linkmon::LinkMonitor;

/// Static description of one *other* pool member, as wired by the
/// topology builder into [`crate::server::ServerSetup::pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolPeer {
    /// The member's static rank (0 = initially active). Unique per pool.
    pub rank: u8,
    /// The member's private address (heartbeats + control channel).
    pub ip: Ipv4Addr,
    /// The member's node id, for STONITH.
    pub node: NodeId,
}

/// Peer-side per-connection view, unwrapped to 64 bits. One per
/// connection per heartbeat sender; in pair mode the single peer's
/// entries live directly in the server's `peer_conns`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PeerConn {
    pub(crate) last_byte_received: u64,
    pub(crate) last_ack_received: u64,
    pub(crate) last_app_byte_written: u64,
    pub(crate) last_app_byte_read: u64,
    pub(crate) fin_or_rst: bool,
    /// The peer's watchdog self-reported its application failed (sticky).
    pub(crate) app_suspected: bool,
    /// Delta (v2) heartbeats only: seqno of the frame that last updated
    /// this record — per-connection ordering, since sharded multi-link
    /// frames can legitimately arrive out of order across links. 0 means
    /// never updated by a v2 frame; the v1 path ignores it.
    pub(crate) last_update_seq: u32,
}

/// Everything this server tracks about one other pool member.
#[derive(Debug)]
pub(crate) struct MemberState {
    /// The member's current rank. Static until the member is fenced and
    /// rejoins, at which point its heartbeats announce the fresh rank the
    /// active assigned it.
    pub(crate) rank: u8,
    /// The member's node id, for STONITH.
    pub(crate) node: NodeId,
    /// IP heartbeat liveness for this member.
    pub(crate) ip_mon: LinkMonitor,
    /// Serial heartbeat liveness for this member.
    pub(crate) serial_mon: LinkMonitor,
    /// The local serial port wired to this member, if any.
    pub(crate) serial_port: Option<SerialPortId>,
    /// The role the member last announced.
    pub(crate) role: Role,
    /// Highest heartbeat seqno accepted from this member (staleness
    /// filter against duplicated / reordered frames).
    pub(crate) last_seqno: Option<u32>,
    /// When `last_seqno` last advanced. Stale frames prove liveness
    /// only within one heartbeat timeout of this point — a seqno frozen
    /// for longer is a replayed or insane stream and must starve the
    /// link monitors instead of refreshing them.
    pub(crate) seqno_advanced_at: SimTime,
    /// The member has been fenced (quorum-confirmed dead + STONITHed).
    /// Everything it says under its old rank is ignored until it rejoins
    /// under a fresh one.
    pub(crate) fenced: bool,
    /// The member was seen serving as `Primary` and then heartbeated as
    /// a `Backup` under the same rank — a transition no live incarnation
    /// ever makes, so the host must have restarted faster than the
    /// liveness timeout. The serving incarnation is gone even though the
    /// reboot keeps the links fresh; fencing treats a defunct member as
    /// condemnable so the takeover is not deadlocked by the resurrection.
    pub(crate) defunct: bool,
    /// A byzantine heartbeat from this member was already logged
    /// (sticky, to keep the event log bounded).
    pub(crate) byzantine_reported: bool,
    /// The member's per-connection positions from its heartbeats.
    pub(crate) conns: BTreeMap<u32, PeerConn>,
}

impl MemberState {
    /// True while at least one heartbeat link from this member is fresh.
    pub(crate) fn alive(&self, now: SimTime) -> bool {
        self.ip_mon.is_alive(now) || self.serial_mon.is_alive(now)
    }

    /// True when both heartbeat links from this member have gone silent.
    pub(crate) fn dead(&self, now: SimTime) -> bool {
        !self.alive(now)
    }

    /// True when this member may be the target of a fence round: both
    /// links silent, or the serving incarnation provably gone behind a
    /// still-heartbeating reboot (`defunct`).
    pub(crate) fn condemnable(&self, now: SimTime) -> bool {
        self.dead(now) || self.defunct
    }

    /// Resets the entry for a fresh incarnation of the member (fenced
    /// node rejoining, or a new join session).
    pub(crate) fn reset_for_rejoin(&mut self, hb_timeout: SimDuration, now: SimTime) {
        self.ip_mon = LinkMonitor::new(hb_timeout, now);
        self.serial_mon = LinkMonitor::new(hb_timeout, now);
        self.role = Role::Backup;
        self.last_seqno = None;
        self.seqno_advanced_at = now;
        self.fenced = false;
        self.defunct = false;
        self.byzantine_reported = false;
        self.conns.clear();
    }
}

/// One in-flight fence round this server is initiating.
#[derive(Debug)]
pub(crate) struct FenceRound {
    /// Round number, monotone per initiator.
    pub(crate) epoch: u32,
    /// The member being fenced.
    pub(crate) target: Ipv4Addr,
    /// Its rank at round start.
    pub(crate) target_rank: u8,
    /// Ranks that granted the fence (always includes the initiator's).
    pub(crate) votes: BTreeSet<u8>,
}

/// Pool-mode state carried by [`crate::server::StTcpServer`]; `None` in
/// pair mode.
#[derive(Debug)]
pub(crate) struct PoolState {
    /// This server's current rank (reassigned on rejoin via `JoinDone`).
    pub(crate) my_rank: u8,
    /// Every other pool member, keyed by private address.
    pub(crate) members: BTreeMap<Ipv4Addr, MemberState>,
    /// The rank of the member currently believed active (0 at start;
    /// updated from `Primary`-role heartbeats and at own takeover).
    pub(crate) active_rank: u8,
    /// The fence round this server is currently initiating, if any.
    pub(crate) fence: Option<FenceRound>,
    /// Fence-round counter (monotone per boot).
    pub(crate) epoch: u32,
    /// The next rank the active hands to a rejoining member. Rejoiners
    /// always rank behind every original member, so a rebooted ex-active
    /// can never be the preferred takeover candidate.
    pub(crate) next_rank: u8,
    /// Local serial ports wired to pool members.
    pub(crate) serial_by_port: BTreeMap<SerialPortId, Ipv4Addr>,
    /// The most recent join session this (active) server served:
    /// `(joiner ip, session nonce, rank assigned)`. Makes the rank
    /// assignment idempotent across re-sent `JoinRequest`s.
    pub(crate) last_session_served: Option<(Ipv4Addr, u32, u8)>,
}

impl PoolState {
    /// Builds the pool view at boot: all members presumed alive (grace
    /// period from fresh monitors anchored at `now`), rank 0 active.
    pub(crate) fn new(
        my_rank: u8,
        peers: &[PoolPeer],
        hb_timeout: SimDuration,
        now: SimTime,
    ) -> PoolState {
        let members: BTreeMap<Ipv4Addr, MemberState> = peers
            .iter()
            .map(|p| {
                (
                    p.ip,
                    MemberState {
                        rank: p.rank,
                        node: p.node,
                        ip_mon: LinkMonitor::new(hb_timeout, now),
                        serial_mon: LinkMonitor::new(hb_timeout, now),
                        serial_port: None,
                        role: if p.rank == 0 {
                            Role::Primary
                        } else {
                            Role::Backup
                        },
                        last_seqno: None,
                        seqno_advanced_at: now,
                        fenced: false,
                        defunct: false,
                        byzantine_reported: false,
                        conns: BTreeMap::new(),
                    },
                )
            })
            .collect();
        let next_rank = peers
            .iter()
            .map(|p| p.rank)
            .chain(std::iter::once(my_rank))
            .max()
            .unwrap_or(0)
            .wrapping_add(1);
        PoolState {
            my_rank,
            members,
            active_rank: 0,
            fence: None,
            epoch: 0,
            next_rank,
            serial_by_port: BTreeMap::new(),
            last_session_served: None,
        }
    }

    /// Members not yet fenced with at least one fresh heartbeat link.
    pub(crate) fn live_non_fenced(&self, now: SimTime) -> usize {
        self.members
            .values()
            .filter(|m| !m.fenced && m.alive(now))
            .count()
    }

    /// Pool strength: this server plus every live non-fenced member.
    pub(crate) fn strength(&self, now: SimTime) -> u64 {
        1 + self.live_non_fenced(now) as u64
    }

    /// Votes needed to fence `target_rank`: a majority of the current
    /// membership (me plus every non-fenced member other than the
    /// target). In the degenerate two-member pool this is 1 — the
    /// initiator's own vote, i.e. classic single-shot STONITH.
    pub(crate) fn quorum_needed(&self, target_rank: u8) -> usize {
        let electorate = 1 + self
            .members
            .values()
            .filter(|m| !m.fenced && m.rank != target_rank)
            .count();
        electorate / 2 + 1
    }

    /// The private address of the member currently believed active, if
    /// it is a known non-fenced member.
    pub(crate) fn active_ip(&self) -> Option<Ipv4Addr> {
        self.members
            .iter()
            .find(|(_, m)| !m.fenced && m.rank == self.active_rank)
            .map(|(&ip, _)| ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers3() -> Vec<PoolPeer> {
        vec![
            PoolPeer {
                rank: 0,
                ip: Ipv4Addr::new(10, 0, 0, 2),
                node: NodeId(1),
            },
            PoolPeer {
                rank: 2,
                ip: Ipv4Addr::new(10, 0, 0, 4),
                node: NodeId(3),
            },
        ]
    }

    #[test]
    fn next_rank_is_one_past_the_pool_maximum() {
        let p = PoolState::new(1, &peers3(), SimDuration::from_millis(600), SimTime::ZERO);
        assert_eq!(p.next_rank, 3);
        assert_eq!(p.active_rank, 0);
        assert_eq!(p.my_rank, 1);
    }

    #[test]
    fn quorum_is_majority_of_non_fenced_membership() {
        let mut p = PoolState::new(1, &peers3(), SimDuration::from_millis(600), SimTime::ZERO);
        // 3-member pool, target is the active: electorate = me + rank2.
        assert_eq!(p.quorum_needed(0), 2);
        // Fence rank 2 out of the membership: degenerate pair left, and
        // fencing the active needs only my own vote (STONITH semantics).
        p.members
            .get_mut(&Ipv4Addr::new(10, 0, 0, 4))
            .unwrap()
            .fenced = true;
        assert_eq!(p.quorum_needed(0), 1);
    }

    #[test]
    fn members_start_alive_via_grace_anchor() {
        let t0 = SimTime::from_millis(1_000);
        let p = PoolState::new(1, &peers3(), SimDuration::from_millis(600), t0);
        assert_eq!(p.live_non_fenced(t0 + SimDuration::from_millis(599)), 2);
        assert_eq!(p.live_non_fenced(t0 + SimDuration::from_millis(600)), 0);
        assert_eq!(p.strength(t0), 3);
    }

    #[test]
    fn active_ip_follows_active_rank_and_fencing() {
        let mut p = PoolState::new(1, &peers3(), SimDuration::from_millis(600), SimTime::ZERO);
        assert_eq!(p.active_ip(), Some(Ipv4Addr::new(10, 0, 0, 2)));
        p.members
            .get_mut(&Ipv4Addr::new(10, 0, 0, 2))
            .unwrap()
            .fenced = true;
        assert_eq!(p.active_ip(), None);
        p.active_rank = 2;
        assert_eq!(p.active_ip(), Some(Ipv4Addr::new(10, 0, 0, 4)));
    }

    #[test]
    fn rejoin_reset_clears_everything_but_identity() {
        let mut p = PoolState::new(1, &peers3(), SimDuration::from_millis(600), SimTime::ZERO);
        let ip = Ipv4Addr::new(10, 0, 0, 2);
        {
            let m = p.members.get_mut(&ip).unwrap();
            m.fenced = true;
            m.defunct = true;
            m.last_seqno = Some(17);
            m.byzantine_reported = true;
            m.conns.insert(1, PeerConn::default());
        }
        let t = SimTime::from_millis(5_000);
        let m = p.members.get_mut(&ip).unwrap();
        m.reset_for_rejoin(SimDuration::from_millis(600), t);
        assert!(!m.fenced);
        assert!(!m.defunct);
        assert_eq!(m.last_seqno, None);
        assert!(!m.byzantine_reported);
        assert!(m.conns.is_empty());
        assert_eq!(m.node, NodeId(1));
        assert!(m.alive(t));
    }
}
