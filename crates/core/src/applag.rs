//! The application-lag failure detector (§4.2.1).
//!
//! Detects application crashes that leave the socket open (no FIN/RST):
//! the failed replica stops reading from its TCP receive buffer and stops
//! writing to its TCP send buffer, while its healthy twin keeps going.
//! The detector compares the local application's read/write positions
//! with the peer's (from the heartbeat) and condemns the peer when it
//! lags by more than `AppMaxLagBytes`, or by *any* amount for longer than
//! `AppMaxLagTime`.
//!
//! The paper's caveat is preserved: if there is no connection activity,
//! neither side makes progress, no lag accrues, and detection waits for
//! the next activity.

use simnet::time::{SimDuration, SimTime};

use crate::events::FailureReason;

/// Lag state for one direction of comparison (read positions or write
/// positions) on one connection.
///
/// Two subtleties make this more than a subtraction:
///
/// * **Heartbeat staleness.** The peer's positions are known only as of
///   its last heartbeat, so at high throughput a perfectly healthy peer
///   appears to "lag" by `rate × staleness` at *every* check — at 5 MB/s
///   that is hundreds of kilobytes. No instantaneous comparison can be
///   trusted. The byte criterion therefore fires only when the peer is
///   behind by `AppMaxLagBytes` **and its reported position has stopped
///   advancing** for a confirmation window spanning several heartbeats —
///   the paper's "lags … for a short duration of time" (§4.2.1). A
///   healthy peer advances in every heartbeat, no matter the data rate; a
///   crashed application's positions freeze.
/// * **Per-byte aging.** The time criterion is the paper's "a particular
///   byte read/written by the primary application lags the corresponding
///   one at the backup by AppMaxLagTime" — the age of the *oldest*
///   position the peer has not yet matched, not "any lag sustained"
///   (which would also trip on staleness). We sample `(position, when I
///   reached it)` watermarks and age the oldest un-matched one.
#[derive(Debug, Clone, Default)]
struct LagTrack {
    /// Last position the peer reported.
    peer_last: u64,
    /// When the peer's reported position last advanced (or was first
    /// observed).
    peer_progress_at: Option<SimTime>,
    /// `(position, time this side reached it)` samples not yet matched by
    /// the peer. Bounded by `max_time / check_period` entries.
    watermarks: std::collections::VecDeque<(u64, SimTime)>,
}

impl LagTrack {
    fn update(
        &mut self,
        now: SimTime,
        mine: u64,
        peers: u64,
        max_bytes: u64,
        max_time: SimDuration,
        confirm: SimDuration,
    ) -> Option<FailureReason> {
        // Track peer progress.
        if peers > self.peer_last || self.peer_progress_at.is_none() {
            self.peer_last = peers;
            self.peer_progress_at = Some(now);
        }
        // Record a watermark whenever this side has advanced.
        match self.watermarks.back() {
            Some(&(pos, _)) if pos >= mine => {}
            _ if mine > peers => self.watermarks.push_back((mine, now)),
            _ => {}
        }
        // Drop watermarks the peer has caught up with.
        while self
            .watermarks
            .front()
            .is_some_and(|&(pos, _)| peers >= pos)
        {
            self.watermarks.pop_front();
        }

        if peers >= mine {
            return None;
        }
        let lag = mine - peers;
        let peer_stalled = self
            .peer_progress_at
            .is_some_and(|at| now.saturating_since(at) >= confirm);
        if lag >= max_bytes && peer_stalled {
            return Some(FailureReason::AppLagBytes);
        }
        if let Some(&(_, when)) = self.watermarks.front() {
            if now.saturating_since(when) >= max_time {
                return Some(FailureReason::AppLagTime);
            }
        }
        None
    }
}

/// Application-lag detector for one connection.
#[derive(Debug, Clone)]
pub struct AppLagDetector {
    max_bytes: u64,
    max_time: SimDuration,
    confirm: SimDuration,
    read: LagTrack,
    write: LagTrack,
}

impl AppLagDetector {
    /// Creates a detector with the `AppMaxLagBytes` / `AppMaxLagTime`
    /// thresholds and the byte-threshold confirmation window (which must
    /// exceed the heartbeat period to absorb heartbeat staleness).
    pub fn new(max_bytes: u64, max_time: SimDuration, confirm: SimDuration) -> AppLagDetector {
        AppLagDetector {
            max_bytes,
            max_time,
            confirm,
            read: LagTrack::default(),
            write: LagTrack::default(),
        }
    }

    /// Feeds one observation and returns a failure verdict if the peer's
    /// application is now condemned.
    ///
    /// `my_read`/`my_written` are the local application's positions
    /// (`LastAppByteRead`/`LastAppByteWritten`); the `peer_*` values come
    /// from the most recent heartbeat.
    pub fn check(
        &mut self,
        now: SimTime,
        my_read: u64,
        my_written: u64,
        peer_read: u64,
        peer_written: u64,
    ) -> Option<FailureReason> {
        let r = self.read.update(
            now,
            my_read,
            peer_read,
            self.max_bytes,
            self.max_time,
            self.confirm,
        );
        let w = self.write.update(
            now,
            my_written,
            peer_written,
            self.max_bytes,
            self.max_time,
            self.confirm,
        );
        r.or(w)
    }

    /// Clears any accrued lag history (used after role changes).
    pub fn reset(&mut self) {
        self.read = LagTrack::default();
        self.write = LagTrack::default();
    }

    /// True while periodic re-checks can change the verdict with no new
    /// position movement: some watermark is aging, i.e. the peer was
    /// behind at the last check. A detector with no outstanding lag only
    /// reacts to position changes, so the server may skip its checks
    /// until local or peer positions move again.
    pub fn needs_check(&self) -> bool {
        !self.read.watermarks.is_empty() || !self.write.watermarks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn det() -> AppLagDetector {
        AppLagDetector::new(
            1_000,
            SimDuration::from_millis(500),
            SimDuration::from_millis(200),
        )
    }

    #[test]
    fn no_lag_no_verdict() {
        let mut d = det();
        assert_eq!(d.check(t(0), 100, 100, 100, 100), None);
        assert_eq!(d.check(t(1_000), 500, 500, 500, 500), None);
    }

    #[test]
    fn peer_ahead_is_fine() {
        // The primary lagging *behind* the backup in our observation is the
        // peer being ahead — never a failure of the peer.
        let mut d = det();
        assert_eq!(d.check(t(0), 100, 100, 900, 900), None);
    }

    #[test]
    fn byte_threshold_fires_after_confirmation() {
        let mut d = det();
        assert_eq!(d.check(t(0), 2_000, 0, 0, 0), None);
        assert_eq!(d.check(t(199), 2_000, 0, 0, 0), None);
        assert_eq!(
            d.check(t(200), 2_000, 0, 0, 0),
            Some(FailureReason::AppLagBytes)
        );
    }

    #[test]
    fn write_lag_also_fires() {
        let mut d = det();
        assert_eq!(d.check(t(0), 0, 2_000, 0, 0), None);
        assert_eq!(
            d.check(t(200), 0, 2_000, 0, 0),
            Some(FailureReason::AppLagBytes)
        );
    }

    #[test]
    fn heartbeat_sawtooth_never_fires() {
        // A healthy fast transfer: between heartbeats the peer appears to
        // lag by more than the byte threshold, but every heartbeat arrival
        // snaps it (nearly) current. The confirmation window must absorb
        // this.
        let mut d = det();
        let mut my_written = 0u64;
        let mut peer_written = 0u64;
        for ms in (0..3_000u64).step_by(50) {
            my_written += 100_000; // huge rate
            if ms % 150 == 0 {
                peer_written = my_written; // heartbeat refresh
            }
            assert_eq!(
                d.check(t(ms), 0, my_written, 0, peer_written),
                None,
                "false positive at {ms}ms"
            );
        }
    }

    #[test]
    fn small_lag_needs_time() {
        let mut d = det();
        assert_eq!(d.check(t(0), 100, 0, 50, 0), None);
        assert_eq!(d.check(t(400), 100, 0, 50, 0), None);
        assert_eq!(
            d.check(t(500), 100, 0, 50, 0),
            Some(FailureReason::AppLagTime)
        );
    }

    #[test]
    fn catching_up_clears_the_clock() {
        let mut d = det();
        assert_eq!(d.check(t(0), 100, 0, 50, 0), None);
        // Peer catches up at t=300.
        assert_eq!(d.check(t(300), 100, 0, 100, 0), None);
        // Falls behind again; the timer restarts.
        assert_eq!(d.check(t(400), 200, 0, 150, 0), None);
        assert_eq!(d.check(t(800), 200, 0, 150, 0), None);
        assert_eq!(
            d.check(t(900), 200, 0, 150, 0),
            Some(FailureReason::AppLagTime)
        );
    }

    #[test]
    fn idle_connection_never_fires() {
        // No activity: both sides stuck at the same positions forever.
        let mut d = det();
        for ms in (0..10_000).step_by(100) {
            assert_eq!(d.check(t(ms), 42, 42, 42, 42), None);
        }
    }

    #[test]
    fn reset_clears_history() {
        let mut d = det();
        let _ = d.check(t(0), 100, 0, 50, 0);
        d.reset();
        assert_eq!(d.check(t(499), 100, 0, 50, 0), None);
        // Timer restarted at 499, so 500 total elapsed is not enough.
        assert_eq!(d.check(t(998), 100, 0, 50, 0), None);
        assert_eq!(
            d.check(t(999), 100, 0, 50, 0),
            Some(FailureReason::AppLagTime)
        );
    }

    #[test]
    fn read_and_write_tracks_are_independent() {
        let mut d = det();
        // Read side lags a little (timer running), write side healthy.
        assert_eq!(d.check(t(0), 100, 500, 50, 500), None);
        // Write side catches read side's timer should not be affected:
        assert_eq!(
            d.check(t(500), 100, 500, 50, 500),
            Some(FailureReason::AppLagTime)
        );
    }
}
