//! The deterministic application interface.
//!
//! ST-TCP's core assumption (§2) is that the server application is
//! deterministic: fed the same input TCP stream, the primary's application
//! and the backup's replica go through the same states and produce the
//! same bytes. This trait makes that contract explicit: an
//! [`Application`]'s *output byte stream* must be a pure function of its
//! *input byte stream* (and its own deterministic internals). Tick
//! callbacks may pace output differently on the two servers, but the byte
//! sequence must be identical — [`Application::state_digest`] lets tests
//! verify replicas are in lockstep.

use bytes::Bytes;
use simnet::time::SimTime;

/// An action an application asks the server to perform on its connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppAction {
    /// Write bytes to the connection.
    Write(Bytes),
    /// Close the connection gracefully (generates a FIN, subject to
    /// ST-TCP arbitration).
    Close,
    /// Abort the connection (generates an RST, subject to arbitration).
    Abort,
}

/// A per-connection deterministic application instance.
///
/// All methods return the actions to apply, in order.
pub trait Application: 'static {
    /// Called when the connection is established.
    fn on_open(&mut self) -> Vec<AppAction> {
        Vec::new()
    }

    /// Called with newly received in-order client bytes.
    fn on_data(&mut self, data: &[u8]) -> Vec<AppAction>;

    /// Called periodically (the server's `app_tick`); used by paced
    /// streaming applications. Output *content* must remain a
    /// deterministic function of the input stream.
    fn on_tick(&mut self, now: SimTime) -> Vec<AppAction> {
        let _ = now;
        Vec::new()
    }

    /// True while this application needs periodic [`Application::on_tick`]
    /// callbacks. The server skips ticking applications that return
    /// `false`, so idle connections cost nothing per tick — the contract
    /// is that `on_tick` must be a no-op whenever this returns `false`.
    /// Re-evaluated after every callback into the application, so state
    /// changed by `on_open`/`on_data`/`on_peer_close` (or a previous tick)
    /// can switch ticking on or off. Defaults to `true` (always ticked).
    fn wants_tick(&self) -> bool {
        true
    }

    /// Called when the client closes its sending side.
    fn on_peer_close(&mut self) -> Vec<AppAction> {
        Vec::new()
    }

    /// A digest of the application's logical state, used by tests to
    /// assert primary/backup lockstep. Must depend only on the consumed
    /// input and emitted output, never on timing.
    fn state_digest(&self) -> u64 {
        0
    }

    /// Serializes the application's logical state for re-integration:
    /// a rejoining backup restores its replica from this blob instead of
    /// replaying the whole input stream. Must be deterministic (same
    /// state ⇒ same bytes) and round-trip through [`Application::restore`]
    /// to an instance with an identical [`Application::state_digest`].
    /// `None` (the default) means the application cannot be snapshotted
    /// and a joiner must start its replica from a fresh instance.
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores logical state serialized by [`Application::snapshot`] on
    /// the active peer. The blob is CRC-protected in transit but
    /// otherwise opaque; implementations should tolerate (ignore) a blob
    /// they cannot parse rather than panic.
    fn restore(&mut self, state: &[u8]) {
        let _ = state;
    }
}

/// Creates per-connection [`Application`] instances for a server.
pub trait AppFactory: 'static {
    /// Creates the application instance for a newly accepted connection.
    fn create(&mut self) -> Box<dyn Application>;
}

impl<F> AppFactory for F
where
    F: FnMut() -> Box<dyn Application> + 'static,
{
    fn create(&mut self) -> Box<dyn Application> {
        self()
    }
}

/// A trivial echo application: returns every byte it receives.
///
/// Useful as a default workload and in doctests.
///
/// # Examples
///
/// ```
/// use sttcp::app::{Application, AppAction, EchoApp};
///
/// let mut app = EchoApp::default();
/// let actions = app.on_data(b"hi");
/// assert_eq!(actions, vec![AppAction::Write(bytes::Bytes::from_static(b"hi"))]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct EchoApp {
    bytes_seen: u64,
}

impl Application for EchoApp {
    fn on_data(&mut self, data: &[u8]) -> Vec<AppAction> {
        self.bytes_seen += data.len() as u64;
        vec![AppAction::Write(Bytes::copy_from_slice(data))]
    }

    /// Echoing is purely reactive; ticks are never needed.
    fn wants_tick(&self) -> bool {
        false
    }

    fn on_peer_close(&mut self) -> Vec<AppAction> {
        vec![AppAction::Close]
    }

    fn state_digest(&self) -> u64 {
        self.bytes_seen
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.bytes_seen.to_le_bytes().to_vec())
    }

    fn restore(&mut self, state: &[u8]) {
        if let Ok(bytes) = state.try_into() {
            self.bytes_seen = u64::from_le_bytes(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_echoes() {
        let mut app = EchoApp::default();
        assert_eq!(
            app.on_data(b"abc"),
            vec![AppAction::Write(Bytes::from_static(b"abc"))]
        );
        assert_eq!(app.state_digest(), 3);
        assert_eq!(app.on_peer_close(), vec![AppAction::Close]);
    }

    #[test]
    fn closure_factory_works() {
        let mut factory: Box<dyn AppFactory> =
            Box::new(|| Box::new(EchoApp::default()) as Box<dyn Application>);
        let mut a = factory.create();
        let mut b = factory.create();
        // Independent instances.
        let _ = a.on_data(b"xx");
        assert_eq!(a.state_digest(), 2);
        assert_eq!(b.state_digest(), 0);
        let _ = b.on_open();
        assert_eq!(b.on_tick(SimTime::ZERO), Vec::new());
    }

    #[test]
    fn snapshot_restore_roundtrips_digest() {
        let mut a = EchoApp::default();
        let _ = a.on_data(b"some traffic");
        let blob = a.snapshot().expect("echo app snapshots");
        let mut b = EchoApp::default();
        b.restore(&blob);
        assert_eq!(a.state_digest(), b.state_digest());
        // A garbage blob is ignored, not a panic.
        let mut c = EchoApp::default();
        c.restore(b"bad");
        assert_eq!(c.state_digest(), 0);
    }

    #[test]
    fn replicas_in_lockstep_given_same_input() {
        let mut p = EchoApp::default();
        let mut b = EchoApp::default();
        for chunk in [b"one".as_ref(), b"two", b"three"] {
            let ap = p.on_data(chunk);
            let ab = b.on_data(chunk);
            assert_eq!(ap, ab);
        }
        assert_eq!(p.state_digest(), b.state_digest());
    }
}
