//! # sttcp — Server fault-Tolerant TCP
//!
//! A from-scratch reproduction of **ST-TCP** (Marwah, Mishra, Fetzer —
//! "A System Demonstration of ST-TCP", DSN 2005): a primary-backup
//! extension of TCP in which an active backup taps the client's traffic,
//! runs a deterministic replica of the server application with matching
//! sequence numbers, and takes over the TCP connection — same IP, same
//! port, same sequence space — when the primary fails. The failover is
//! invisible to an unmodified client.
//!
//! ## What lives where
//!
//! * [`server`] — [`server::StTcpServer`], the node that ties everything
//!   together; instantiate one as primary and one as backup.
//! * [`config`] — every tunable the paper names (`hb_period`,
//!   `AppMaxLagBytes`, `AppMaxLagTime`, `MaxDelayFIN`, …).
//! * [`heartbeat`] — the dual-link heartbeat wire format (§3).
//! * [`linkmon`] / [`applag`] / [`netdetect`] / [`finarb`] — the failure
//!   detectors of Table 1 (HW/OS crash, application crash without and
//!   with cleanup, NIC/local-network failure).
//! * [`recover`] — missed-byte recovery from the primary's extended
//!   receive buffer (Table 1 row 5).
//! * [`pool`] — the N-replica standby-pool extension: rank-ordered
//!   takeover with quorum-checked fencing and rank reassignment on
//!   rejoin (pair mode is the degenerate two-member pool).
//! * [`metrics`] — per-server counters, gauges, and histograms
//!   ([`metrics::ServerMetrics`]) fed from the protocol hot paths and
//!   serialized into the `obs` metrics report.
//! * [`app`] — the deterministic application contract (§2's assumption,
//!   made explicit) that replicas must satisfy.
//! * [`events`] — the externally observable protocol event log that tests
//!   and experiment harnesses assert on.
//!
//! The substrate lives in the sibling crates: [`simnet`] (deterministic
//! network simulation: switch with multicast tap, serial link, fault
//! injection, STONITH power control) and [`simtcp`] (the userspace TCP
//! with ST-TCP's hook points).
//!
//! ## Example
//!
//! Building the full two-server topology takes a dozen wiring steps
//! (NICs, switch, serial cable, ARP entries), so the runnable examples
//! live in the workspace's `examples/` directory and the scenario builder
//! in the `sttcp-apps` crate; start with `examples/quickstart.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod applag;
pub mod config;
pub mod events;
pub mod finarb;
pub mod heartbeat;
pub mod invariant;
pub mod linkmon;
pub mod metrics;
pub mod milestone;
pub mod netdetect;
pub mod pool;
pub mod recover;
pub mod server;
pub mod wire;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::app::{AppAction, AppFactory, Application, EchoApp};
    pub use crate::config::{Role, StTcpConfig};
    pub use crate::events::{FailureReason, FinReleaseReason, HbLink, StTcpEvent};
    pub use crate::heartbeat::{conn_key, ConnHb, HbPayload, PingReport};
    pub use crate::pool::PoolPeer;
    pub use crate::server::{AppCrashMode, ByzantineHbMode, ServerSetup, StTcpServer};
}
