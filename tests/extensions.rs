//! Integration tests for capabilities beyond the paper's headline demos:
//! multiple simultaneous client connections, the §4.2.2 watchdog
//! extension, and the §4.3 output-commit (unrecoverable gap) caveat.

use std::rc::Rc;

use simnet::time::{SimDuration, SimTime};

use sttcp::app::EchoApp;
use sttcp::config::{Role, StTcpConfig};
use sttcp::events::{FailureReason, StTcpEvent};
use sttcp::server::AppCrashMode;

use sttcp_apps::apps::StreamApp;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::{AppMaker, ScenarioBuilder};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn stream_app(chunk: usize) -> AppMaker {
    Rc::new(move || Box::new(StreamApp::new(chunk, false)) as _)
}

fn echo_app() -> AppMaker {
    Rc::new(|| Box::new(EchoApp::default()) as _)
}

// ---------------------------------------------------------------------
// Multiple clients
// ---------------------------------------------------------------------

#[test]
fn three_clients_all_served_failure_free() {
    // One server application type serves every client, so all workloads
    // speak the streamer's protocol.
    let mut s = ScenarioBuilder::new(
        stream_app(4096),
        ClientWorkload::Download { total: 128 * 1024 },
    )
    .extra_clients(vec![
        ClientWorkload::Download { total: 64 * 1024 },
        ClientWorkload::Download { total: 96 * 1024 },
    ])
    .seed(201)
    .build();
    s.world.run_until(t(15_000));
    for &c in s.clients.clone().iter() {
        assert!(s.finished(c), "client {c:?} unfinished: {:?}", s.log_of(c));
        assert_eq!(s.log_of(c).integrity_violations, 0);
    }
    // The heartbeat carries one record per connection on both servers.
    assert_eq!(s.server(s.primary).conn_keys().len(), 3);
    assert_eq!(s.server(s.backup).conn_keys().len(), 3);
    // Replica lockstep on every connection.
    for key in s.server(s.primary).conn_keys() {
        assert_eq!(
            s.server(s.primary).app_digest(key),
            s.server(s.backup).app_digest(key),
            "replica divergence on conn {key:08x}"
        );
    }
}

#[test]
fn three_clients_survive_primary_crash_together() {
    let mut s = ScenarioBuilder::new(
        stream_app(4096),
        ClientWorkload::Download { total: 512 * 1024 },
    )
    .extra_clients(vec![
        ClientWorkload::Download { total: 512 * 1024 },
        ClientWorkload::Download { total: 384 * 1024 },
    ])
    .seed(202)
    .build();
    s.crash_primary_at(t(800));
    s.world.run_until(t(60_000));
    assert!(s.server(s.backup).took_over_at().is_some());
    for &c in s.clients.clone().iter() {
        let log = s.log_of(c);
        assert!(s.finished(c), "client {c:?} unfinished: {log:?}");
        assert_eq!(log.integrity_violations, 0, "client {c:?} corrupted");
        assert_eq!(log.resets, 0, "client {c:?} reset");
        assert_eq!(log.connects.len(), 1, "client {c:?} reconnected");
    }
}

// ---------------------------------------------------------------------
// Watchdog extension (§4.2.2)
// ---------------------------------------------------------------------

#[test]
fn watchdog_detects_app_crash_on_idle_connection() {
    // The case the paper admits the transport layer cannot see: the
    // primary's application dies while the connection is completely idle.
    let cfg = StTcpConfig {
        watchdog_timeout: Some(SimDuration::from_millis(500)),
        ..Default::default()
    };
    let mut s = ScenarioBuilder::new(echo_app(), ClientWorkload::Idle)
        .seed(210)
        .sttcp(cfg)
        .build();
    s.crash_app_at(s.primary, t(2_000), AppCrashMode::SilentNoCleanup);
    s.world.run_until(t(20_000));
    let reason = s.server(s.backup).events().iter().find_map(|e| match e {
        StTcpEvent::PeerDeclaredFailed { reason, at } => Some((*reason, *at)),
        _ => None,
    });
    let (reason, at) = reason.expect("watchdog should have caught the idle crash");
    assert_eq!(reason, FailureReason::WatchdogReport);
    // Detection: watchdog timeout + heartbeat + check slop.
    assert!(at > t(2_500) && at < t(4_000), "detected at {at}");
    assert!(s.server(s.backup).took_over_at().is_some());
    assert!(!s.world.is_powered(s.primary));
}

#[test]
fn without_watchdog_idle_app_crash_stays_undetected() {
    // The paper's admitted limitation, reproduced: no traffic, no FIN, no
    // watchdog ⇒ nothing at the transport layer ever notices.
    let mut s = ScenarioBuilder::new(echo_app(), ClientWorkload::Idle)
        .seed(211)
        .build();
    s.crash_app_at(s.primary, t(2_000), AppCrashMode::SilentNoCleanup);
    s.world.run_until(t(30_000));
    let verdicts = s
        .server(s.backup)
        .events()
        .iter()
        .any(|e| matches!(e, StTcpEvent::PeerDeclaredFailed { .. }));
    assert!(
        !verdicts,
        "idle crash should be invisible without a watchdog"
    );
    assert!(s.server(s.primary).ft_mode());
}

#[test]
fn watchdog_never_fires_on_healthy_idle_pair() {
    let cfg = StTcpConfig {
        watchdog_timeout: Some(SimDuration::from_millis(500)),
        ..Default::default()
    };
    let mut s = ScenarioBuilder::new(echo_app(), ClientWorkload::Idle)
        .seed(212)
        .sttcp(cfg)
        .build();
    s.world.run_until(t(30_000));
    for node in [s.primary, s.backup] {
        assert!(
            s.server(node)
                .events()
                .iter()
                .all(|e| !matches!(e, StTcpEvent::PeerDeclaredFailed { .. })),
            "false watchdog verdict on {node:?}: {:?}",
            s.server(node).events()
        );
    }
    assert!(s.server(s.primary).ft_mode());
    assert!(s.server(s.backup).ft_mode());
}

#[test]
fn watchdog_accelerates_detection_under_traffic_too() {
    let cfg = StTcpConfig {
        watchdog_timeout: Some(SimDuration::from_millis(300)),
        // Make the lag detectors slow so the watchdog visibly wins.
        app_max_lag_time: SimDuration::from_secs(10),
        app_max_lag_bytes: 64 * 1024 * 1024,
        ..Default::default()
    };
    let mut s = ScenarioBuilder::new(
        echo_app(),
        ClientWorkload::EchoChat {
            chunk: 512,
            period: SimDuration::from_millis(50),
            count: 300,
        },
    )
    .seed(213)
    .sttcp(cfg)
    .build();
    s.crash_app_at(s.primary, t(2_000), AppCrashMode::SilentNoCleanup);
    s.world.run_until(t(60_000));
    let reason = s.server(s.backup).events().iter().find_map(|e| match e {
        StTcpEvent::PeerDeclaredFailed { reason, at } => Some((*reason, *at)),
        _ => None,
    });
    let (reason, at) = reason.expect("detected");
    assert_eq!(reason, FailureReason::WatchdogReport);
    assert!(
        at < t(4_000),
        "watchdog should beat the 10s lag timer, fired {at}"
    );
    assert!(s.client_finished());
    assert_eq!(s.client_log().resets, 0);
}

// ---------------------------------------------------------------------
// Output-commit caveat (§4.3): unrecoverable gap at takeover
// ---------------------------------------------------------------------

#[test]
fn primary_crash_during_recovery_resets_connection_not_hangs() {
    let cfg = StTcpConfig {
        // Keep the backup from (re-)fetching before the crash lands, and
        // shorten the post-takeover hole deadline for test speed.
        recovery_interval: SimDuration::from_secs(600),
        gap_giveup: SimDuration::from_secs(2),
        ..Default::default()
    };
    let mut s = ScenarioBuilder::new(
        echo_app(),
        ClientWorkload::EchoChat {
            chunk: 1024,
            period: SimDuration::from_millis(50),
            count: 300,
        },
    )
    .seed(220)
    .sttcp(cfg)
    .build();
    // The backup misses bytes the primary acks…
    s.drop_backup_tap_at(t(2_000), 10);
    // …and the primary dies moments later — before any recovery round.
    s.crash_primary_at(t(2_150));
    s.world.run_until(t(30_000));

    let backup = s.server(s.backup);
    assert!(backup.took_over_at().is_some());
    let unrecoverable = backup
        .events()
        .iter()
        .any(|e| matches!(e, StTcpEvent::UnrecoverableGap { .. }));
    assert!(unrecoverable, "gap not flagged: {:?}", backup.events());
    // The client is *reset* (the honest unrecoverable outcome the paper
    // describes), not stranded on a silent, permanently stalled
    // connection.
    let log = s.client_log();
    assert_eq!(
        log.resets, 1,
        "client should see exactly one reset: {log:?}"
    );
    assert_eq!(log.integrity_violations, 0);
    assert_eq!(s.server(s.backup).role(), Role::Primary);
}

// ---------------------------------------------------------------------
// Delta (v2) heartbeats and parallel serial links
// ---------------------------------------------------------------------

fn delta_cfg() -> StTcpConfig {
    StTcpConfig {
        hb_delta: true,
        ..Default::default()
    }
}

#[test]
fn delta_heartbeats_serve_clients_failure_free() {
    let mut s = ScenarioBuilder::new(
        stream_app(4096),
        ClientWorkload::Download { total: 128 * 1024 },
    )
    .extra_clients(vec![
        ClientWorkload::Download { total: 64 * 1024 },
        ClientWorkload::Idle,
        ClientWorkload::Idle,
    ])
    .seed(230)
    .sttcp(delta_cfg())
    .serial_links(3)
    .build();
    s.world.run_until(t(15_000));
    for &c in s.clients.clone().iter() {
        let log = s.log_of(c);
        assert_eq!(log.integrity_violations, 0);
        assert_eq!(log.connects.len(), 1, "client {c:?}: {log:?}");
    }
    assert!(s.finished(s.client));
    assert_eq!(s.server(s.primary).conn_keys().len(), 4);
    assert_eq!(s.server(s.backup).conn_keys().len(), 4);
    for key in s.server(s.primary).conn_keys() {
        assert_eq!(
            s.server(s.primary).app_digest(key),
            s.server(s.backup).app_digest(key),
            "replica divergence on conn {key:08x}"
        );
    }
}

#[test]
fn delta_heartbeats_survive_primary_crash() {
    let mut s = ScenarioBuilder::new(
        stream_app(4096),
        ClientWorkload::Download { total: 512 * 1024 },
    )
    .extra_clients(vec![
        ClientWorkload::Download { total: 384 * 1024 },
        ClientWorkload::Idle,
    ])
    .seed(231)
    .sttcp(delta_cfg())
    .serial_links(2)
    .build();
    s.crash_primary_at(t(800));
    s.world.run_until(t(60_000));
    assert!(s.server(s.backup).took_over_at().is_some());
    for c in [s.client, s.clients[1]] {
        let log = s.log_of(c);
        assert!(s.finished(c), "client {c:?} unfinished: {log:?}");
        assert_eq!(log.integrity_violations, 0, "client {c:?} corrupted");
        assert_eq!(log.resets, 0, "client {c:?} reset");
        assert_eq!(log.connects.len(), 1, "client {c:?} reconnected");
    }
}

#[test]
fn delta_idle_steady_state_sends_empty_frames() {
    // Once every connection's counters are acknowledged, delta frames
    // carry zero records — the O(active) promise on an idle pair.
    let mut s = ScenarioBuilder::new(echo_app(), ClientWorkload::Idle)
        .extra_clients(vec![ClientWorkload::Idle; 8])
        .seed(232)
        .sttcp(delta_cfg())
        .serial_links(2)
        .build();
    s.world.run_until(t(5_000));
    let before = s.server(s.primary).metrics().hb_bandwidth();
    s.world.run_until(t(25_000));
    let after = s.server(s.primary).metrics().hb_bandwidth();
    let rounds = after.rounds - before.rounds;
    let entries = after.conn_entries - before.conn_entries;
    assert!(rounds >= 90, "expected ~100 idle rounds, got {rounds}");
    assert_eq!(
        entries, 0,
        "idle delta rounds must carry no connection records"
    );
    // And the pair still converged on all 9 connections.
    assert_eq!(s.server(s.primary).conn_keys().len(), 9);
    assert_eq!(s.server(s.backup).conn_keys().len(), 9);
}

#[test]
fn delta_serial_shards_survive_ip_heartbeat_loss() {
    // Kill the primary's NIC: only the sharded serial links remain, and
    // the net-lag detector must still fire through them (the IP frame
    // carried every record; serial shard s carries only conns with
    // key % nserial == s, so liveness and per-conn state both flow).
    let mut s = ScenarioBuilder::new(
        stream_app(4096),
        ClientWorkload::Download { total: 512 * 1024 },
    )
    .extra_clients(vec![ClientWorkload::Download { total: 256 * 1024 }])
    .seed(233)
    .sttcp(delta_cfg())
    .serial_links(3)
    .build();
    s.fail_nic_at(s.primary, t(900));
    s.world.run_until(t(60_000));
    assert!(
        s.server(s.backup).took_over_at().is_some(),
        "backup never took over after NIC failure: {:?}",
        s.server(s.backup).events()
    );
    for &c in s.clients.clone().iter() {
        let log = s.log_of(c);
        assert!(s.finished(c), "client {c:?} unfinished: {log:?}");
        assert_eq!(log.integrity_violations, 0);
        assert_eq!(log.connects.len(), 1);
    }
}
