//! Integration tests for the chaos engine itself: deterministic replay,
//! paste-able reproducers, shrinker soundness, and regression schedules
//! for classes of faults the protocol must absorb.
//!
//! The heavier seeded sweeps live in `tests/soak.rs`; these tests pin the
//! *machinery* — that a printed schedule replays bit-for-bit, that the
//! shrinker converges to the same minimum every time, and that specific
//! small schedules land in the outcome class they are supposed to.

use sttcp::events::StTcpEvent;
use sttcp::invariant::Outcome;
use sttcp_apps::chaos::{run_chaos_case, shrink_schedule, ChaosOptions, FaultSchedule};

fn quick() -> ChaosOptions {
    ChaosOptions::quick()
}

/// Replaying the same `(seed, schedule)` twice must produce identical
/// observable behavior — the property that makes printed reproducers and
/// shrinking sound.
#[test]
fn replay_is_bit_for_bit_deterministic() {
    for seed in [0, 3, 17, 40, 99] {
        let schedule = FaultSchedule::generate(seed);
        let a = run_chaos_case(seed, &schedule, &quick());
        let b = run_chaos_case(seed, &schedule, &quick());
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "seed {seed} ({schedule}) diverged between runs"
        );
    }
}

/// A schedule that went through print-then-parse replays identically to
/// the original — the reproducer a violation prints is trustworthy.
#[test]
fn printed_reproducer_replays_identically() {
    for seed in [1, 7, 23, 61] {
        let schedule = FaultSchedule::generate(seed);
        let reparsed: FaultSchedule = schedule.to_string().parse().unwrap();
        assert_eq!(reparsed, schedule);
        let a = run_chaos_case(seed, &schedule, &quick());
        let b = run_chaos_case(seed, &reparsed, &quick());
        assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed}");
    }
}

/// The shrinker is deterministic: shrinking the same violation twice
/// yields the same minimal schedule in the same number of probe runs.
/// (Uses a benign schedule judged by a synthetic predicate in unit tests;
/// here we only exercise the end-to-end entry point on a non-violating
/// schedule, which must come back unchanged.)
#[test]
fn shrinking_a_passing_schedule_is_identity() {
    let schedule: FaultSchedule = "@500 crash primary".parse().unwrap();
    let r1 = shrink_schedule(11, &schedule, &quick());
    let r2 = shrink_schedule(11, &schedule, &quick());
    assert_eq!(r1.schedule, schedule);
    assert_eq!(r1.schedule, r2.schedule);
    assert_eq!(r1.runs, r2.runs);
}

/// A fault-free schedule must come back `Clean`: full download, no
/// verdicts, no resets.
#[test]
fn empty_schedule_is_clean() {
    let report = run_chaos_case(5, &FaultSchedule::default(), &quick());
    assert_eq!(report.outcome, Outcome::Clean, "{:?}", report.violations);
    assert!(report.client.finished);
    assert_eq!(report.client.resets, 0);
}

/// A primary crash mid-transfer is the paper's headline scenario: the
/// backup takes over and the client finishes. Anything less is a bug.
#[test]
fn primary_crash_recovers() {
    let schedule: FaultSchedule = "@900 crash primary".parse().unwrap();
    let report = run_chaos_case(2, &schedule, &quick());
    assert_eq!(
        report.outcome,
        Outcome::Recovered,
        "violations: {:?}",
        report.violations
    );
    assert!(report.client.finished);
    assert!(report
        .backup_events
        .iter()
        .any(|e| matches!(e, StTcpEvent::TookOver { .. })));
}

/// Regression: a small burst of corrupted frames toward the primary is
/// *dropped, never acted on* — the CRC turns corruption into loss, so no
/// failure verdict may fire and the client still finishes. Before the
/// control formats carried checksums, a flipped bit inside a heartbeat
/// could be decoded as a live message and acted on.
#[test]
fn corrupted_frames_are_dropped_not_acted_on() {
    for (seed, schedule) in [
        (4, "@400 corrupt primary 6"),
        (9, "@300 corrupt backup 6"),
        (13, "@250 corrupt client 4"),
    ] {
        let schedule: FaultSchedule = schedule.parse().unwrap();
        let report = run_chaos_case(seed, &schedule, &quick());
        assert_ne!(
            report.outcome,
            Outcome::Violation,
            "seed {seed} ({schedule}): {:?}",
            report.violations
        );
        let verdicts = report
            .primary_events
            .iter()
            .chain(report.backup_events.iter())
            .filter(|e| {
                matches!(
                    e,
                    StTcpEvent::PeerDeclaredFailed { .. }
                        | StTcpEvent::TookOver { .. }
                        | StTcpEvent::StonithIssued { .. }
                )
            })
            .count();
        assert_eq!(
            verdicts, 0,
            "seed {seed} ({schedule}): corruption provoked a verdict"
        );
    }
}

/// A crashed-then-rebooted primary stays a passive cold standby: the
/// backup runs the service alone and no second active server appears.
#[test]
fn rebooted_primary_stays_cold() {
    let schedule: FaultSchedule = "@800 crash primary; @1400 reboot primary".parse().unwrap();
    let report = run_chaos_case(6, &schedule, &quick());
    assert_ne!(
        report.outcome,
        Outcome::Violation,
        "violations: {:?}",
        report.violations
    );
    // The rebooted primary must not have taken over again.
    let primary_takeovers = report
        .primary_events
        .iter()
        .filter(|e| matches!(e, StTcpEvent::TookOver { .. }))
        .count();
    assert_eq!(primary_takeovers, 0);
}

/// Regression (found by the 2000-seed hunt, seed 1877): a transient
/// fault stalls the transport, both replica apps freeze at the same
/// stream position, and the app then dies with an abortive close. The
/// FIN/RST gate held the one-shot RST — and unlike a FIN, an RST is
/// never regenerated by retransmission — so when MaxDelayFIN released
/// the gate nothing was re-sent and the client hung forever with zero
/// resets. `release_fin` must re-issue a held RST.
#[test]
fn held_rst_is_reissued_when_gate_opens() {
    let schedule: FaultSchedule = "@200 nic-down primary; @1000 nic-up primary; \
                                   @7000 app-crash primary rst"
        .parse()
        .unwrap();
    let report = run_chaos_case(1877, &schedule, &ChaosOptions::default());
    assert_ne!(
        report.outcome,
        Outcome::Violation,
        "violations: {:?}",
        report.violations
    );
    assert!(
        report.client.resets >= 1,
        "client must be told about the abortive close, not left hanging \
         (client: {:?})",
        report.client
    );
}

/// Double crash (both servers) destroys the service; the checker must
/// classify it as `ServiceLost` or an explicitly announced failure —
/// never a violation, and never a silently "successful" run.
#[test]
fn double_crash_loses_service_without_violation() {
    // Both crashes land before the download can complete: the primary
    // dies mid-handshake and the backup dies before its takeover can
    // finish serving.
    let schedule: FaultSchedule = "@150 crash primary; @400 crash backup".parse().unwrap();
    let report = run_chaos_case(8, &schedule, &quick());
    assert!(
        matches!(
            report.outcome,
            Outcome::ServiceLost | Outcome::DetectedUnrecoverable
        ),
        "outcome {} (violations: {:?})",
        report.outcome,
        report.violations
    );
    assert!(!report.client.finished);
}

/// The tentpole end-to-end scenario: the primary crashes mid-transfer,
/// the backup takes over, the primary warm-reboots and re-integrates
/// into the live connection — and then the *backup* crashes while data
/// is still flowing. The re-integrated primary must detect the failure,
/// fence, take over, and finish serving the (verified) download. The
/// download is sized so it cannot complete before the second crash:
/// a finished client proves the tail bytes came from the rejoined node.
#[test]
fn reintegrated_pair_survives_second_crash() {
    use simnet::time::SimTime;

    let opts = ChaosOptions {
        total_bytes: 2 * 1024 * 1024,
        reintegrate: true,
        ..ChaosOptions::default()
    };
    let schedule: FaultSchedule = "@300 crash primary; @1200 reboot primary; @2000 crash backup"
        .parse()
        .unwrap();
    let report = run_chaos_case(12, &schedule, &opts);

    assert_eq!(
        report.outcome,
        Outcome::Recovered,
        "violations: {:?}, client: {:?}",
        report.violations,
        report.client
    );
    assert!(report.client.finished);
    assert_eq!(report.client.bytes_ok, opts.total_bytes);
    assert_eq!(report.client.integrity_violations, 0);

    // Redundancy was restored before the second fault...
    let rejoined_at = report
        .primary_events
        .iter()
        .find_map(|e| match e {
            StTcpEvent::ReintegrationCompleted { at } => Some(*at),
            _ => None,
        })
        .expect("primary never completed re-integration");
    assert!(rejoined_at < SimTime::from_millis(2_000));

    // ...and the rejoined primary performed the second takeover.
    let second_takeover = report
        .primary_events
        .iter()
        .find_map(|e| match e {
            StTcpEvent::TookOver { at } => Some(*at),
            _ => None,
        })
        .expect("re-integrated primary never took over");
    assert!(second_takeover > rejoined_at);
}

/// The reintegrate-then-fail tier obeys the same determinism contract as
/// the other sweep flavours, and a seed sweep of it stays violation-free:
/// snapshot transfer must never break output commit or digest lockstep.
#[test]
fn reintegrate_sweep_is_deterministic_and_clean() {
    use sttcp_bench::hunt::{run_sweep, SweepConfig};
    let opts = ChaosOptions {
        reintegrate: true,
        ..ChaosOptions::quick()
    };
    let reports: Vec<String> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let cfg = SweepConfig {
                seeds: 64,
                start: 0,
                quick: true,
                double: false,
                reintegrate: true,
                threads,
            };
            let summary = run_sweep(&cfg, &opts, |_| {});
            assert!(
                summary.violated.is_empty(),
                "reintegrate sweep hit violations at {threads} threads: {:?}",
                summary.violated
            );
            summary.to_report(&cfg, true).to_json()
        })
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "reintegrate sweep report differs between 1 and 4 threads"
    );
}

/// Delta heartbeats are a wire optimisation, not a behaviour change.
/// Two contracts, both over 64 seeds:
///
/// 1. A delta-mode sweep folds to a byte-identical metrics report at 1
///    and 4 threads — the same determinism contract full-state mode
///    already pins.
/// 2. Every seed's semantic verdict matches between delta and
///    full-state mode: outcome class, violated invariants, client
///    integrity, and which servers took over / fenced. Raw fingerprints
///    legitimately diverge across modes (delta frames are smaller, so
///    every microsecond timestamp downstream of a heartbeat shifts);
///    what must not change is any protocol *decision*.
#[test]
fn delta_heartbeat_sweep_matches_full_state_semantics() {
    use sttcp_bench::hunt::{run_sweep, SweepConfig};

    let delta_opts = ChaosOptions {
        hb_delta: true,
        ..ChaosOptions::quick()
    };

    // Contract 1: delta mode is deterministic and thread-invariant.
    let reports: Vec<String> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let cfg = SweepConfig {
                seeds: 64,
                start: 0,
                quick: true,
                double: false,
                reintegrate: false,
                threads,
            };
            run_sweep(&cfg, &delta_opts, |_| {})
                .to_report(&cfg, true)
                .to_json()
        })
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "delta sweep report differs between 1 and 4 threads"
    );

    // Contract 2: per-seed verdict equivalence against full-state mode.
    let project = |r: &sttcp_apps::chaos::ChaosReport| {
        let took_over =
            |evs: &[StTcpEvent]| evs.iter().any(|e| matches!(e, StTcpEvent::TookOver { .. }));
        let stonith = |evs: &[StTcpEvent]| {
            evs.iter()
                .any(|e| matches!(e, StTcpEvent::StonithIssued { .. }))
        };
        (
            r.outcome,
            r.violations.iter().map(|v| v.invariant).collect::<Vec<_>>(),
            r.client.finished,
            r.client.integrity_violations,
            took_over(&r.primary_events),
            took_over(&r.backup_events),
            stonith(&r.primary_events),
            stonith(&r.backup_events),
        )
    };
    for seed in 0..64 {
        let schedule = FaultSchedule::generate(seed);
        let full = run_chaos_case(seed, &schedule, &quick());
        let delta = run_chaos_case(seed, &schedule, &delta_opts);
        assert_eq!(
            project(&full),
            project(&delta),
            "seed {seed} ({schedule}): delta mode changed the verdict"
        );
    }
}

/// Batched heartbeat envelopes (v3 multi-part frames) are a framing
/// optimisation, not a behaviour change. Same two contracts as the
/// delta sweep, both over 64 seeds:
///
/// 1. A batch-mode sweep folds to a byte-identical metrics report at 1
///    and 4 threads.
/// 2. Every seed's semantic verdict matches between batch-on (tiny
///    2-record parts, so multi-part rounds actually occur under chaos
///    load) and batch-off runs of the same schedule. Raw fingerprints
///    legitimately diverge (different frame sizes shift downstream
///    timestamps); protocol *decisions* must not.
#[test]
fn batch_heartbeat_sweep_matches_single_frame_semantics() {
    use sttcp_bench::hunt::{run_sweep, SweepConfig};

    let batch_opts = ChaosOptions {
        hb_delta: true,
        hb_batch: 2,
        ..ChaosOptions::quick()
    };

    // Contract 1: batch mode is deterministic and thread-invariant.
    let reports: Vec<String> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let cfg = SweepConfig {
                seeds: 64,
                start: 0,
                quick: true,
                double: false,
                reintegrate: false,
                threads,
            };
            run_sweep(&cfg, &batch_opts, |_| {})
                .to_report(&cfg, true)
                .to_json()
        })
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "batch sweep report differs between 1 and 4 threads"
    );

    // Contract 2: per-seed verdict equivalence against single-frame mode.
    let single_opts = ChaosOptions {
        hb_delta: true,
        hb_batch: 0,
        ..ChaosOptions::quick()
    };
    let project = |r: &sttcp_apps::chaos::ChaosReport| {
        let took_over =
            |evs: &[StTcpEvent]| evs.iter().any(|e| matches!(e, StTcpEvent::TookOver { .. }));
        let stonith = |evs: &[StTcpEvent]| {
            evs.iter()
                .any(|e| matches!(e, StTcpEvent::StonithIssued { .. }))
        };
        (
            r.outcome,
            r.violations.iter().map(|v| v.invariant).collect::<Vec<_>>(),
            r.client.finished,
            r.client.integrity_violations,
            took_over(&r.primary_events),
            took_over(&r.backup_events),
            stonith(&r.primary_events),
            stonith(&r.backup_events),
        )
    };
    for seed in 0..64 {
        let schedule = FaultSchedule::generate(seed);
        let single = run_chaos_case(seed, &schedule, &single_opts);
        let batch = run_chaos_case(seed, &schedule, &batch_opts);
        assert_eq!(
            project(&single),
            project(&batch),
            "seed {seed} ({schedule}): batch framing changed the verdict"
        );
    }
}

/// `--threads` must be invisible in the results: a 64-seed sweep run on
/// a 4-worker pool folds to a byte-identical metrics report (outcome
/// counters, phase percentiles, bound checks — everything) as the same
/// sweep run sequentially. This is the determinism contract the
/// parallel seed fan-out is built on.
#[test]
fn sweep_report_is_identical_across_thread_counts() {
    use sttcp_bench::hunt::{run_sweep, SweepConfig};
    for double in [false, true] {
        let reports: Vec<String> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let cfg = SweepConfig {
                    seeds: 64,
                    start: 0,
                    quick: true,
                    double,
                    reintegrate: false,
                    threads,
                };
                run_sweep(&cfg, &quick(), |_| {})
                    .to_report(&cfg, true)
                    .to_json()
            })
            .collect();
        assert_eq!(
            reports[0], reports[1],
            "sweep report differs between 1 and 4 threads (double={double})"
        );
    }
}
