//! Integration tier for the bounded-exhaustive explorer
//! (`sttcp_apps::explore` + `sttcp_bench::explore`):
//!
//! * the enumerated lattice clears the 10k-point floor on the standard
//!   pair topology,
//! * the coverage report is byte-identical at any thread count, and
//! * with the `inject_held_rst` mutation compiled in, a PR-CI-budget
//!   slice of the lattice rediscovers the PR-1 held-RST bug and
//!   shrinks it to a two-fault reproducer. The mirror test pins the
//!   same slice clean when the mutation is compiled out, so a
//!   rediscovery is attributable to the mutation alone.

use sttcp_apps::chaos::{ChaosOptions, ChaosWorkload};
use sttcp_apps::explore::{build_lattice, probe_milestones};
use sttcp_bench::explore::{run_explore, ExploreConfig};

fn cfg(threads: usize, budget: Option<usize>) -> ExploreConfig {
    ExploreConfig {
        seed: 0,
        workload: ChaosWorkload::Download,
        threads,
        budget,
    }
}

/// The deterministic stride slice both rediscovery tests run:
/// large enough that the stride provably crosses the post-repair-crash
/// points (verified by the mutation test), small enough for a PR-CI
/// job.
const CI_BUDGET: usize = 3000;

#[test]
fn full_lattice_clears_ten_thousand_points() {
    let (milestones, probe) = probe_milestones(0, &ChaosOptions::quick());
    assert!(
        probe.violations.is_empty(),
        "fault-free probe must be clean"
    );
    let lat = build_lattice(&milestones);
    assert!(
        lat.schedules.len() >= 10_000,
        "lattice too small: {} points",
        lat.schedules.len()
    );
    assert!(lat.single_points > 0 && lat.pair_points > 0);
    // The pruning accounting must close: every raw pair is either
    // enumerated or attributed to a pruning rule.
    let g = 22;
    assert_eq!(
        lat.pair_points + lat.mirrored_pruned + lat.vacuous_pruned,
        lat.pair_time_pairs * g * g
    );
}

#[test]
fn explore_report_is_byte_identical_across_threads() {
    let opts = ChaosOptions::quick();
    let one = run_explore(&cfg(1, Some(24)), &opts, |_| {});
    let four = run_explore(&cfg(4, Some(24)), &opts, |_| {});
    assert_eq!(one.summary.points, 24);
    assert_eq!(
        one.to_report(&cfg(1, Some(24))).to_json(),
        four.to_report(&cfg(4, Some(24))).to_json(),
        "coverage report must not depend on thread count"
    );
}

/// Counts the *faults* in a schedule: repair actions (the second half
/// of a flap composite) ride along with the outage they close and are
/// not counted.
#[cfg(feature = "inject_held_rst")]
fn fault_count(s: &sttcp_apps::chaos::FaultSchedule) -> usize {
    s.actions
        .iter()
        .filter(|t| {
            !matches!(
                t.action.kind(),
                "nic-up" | "restore" | "serial-restore" | "loss-end" | "jitter-end"
            )
        })
        .count()
}

/// The rediscovery gate: the explorer, given only the lattice and the
/// invariant oracle, must re-find the re-introduced PR-1 held-RST bug
/// within a PR-CI budget and shrink it to a minimal reproducer of at
/// most two faults (a transient outage composite plus the application
/// crash whose RST the gate swallows).
#[cfg(feature = "inject_held_rst")]
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: runs a 3000-point lattice slice"
)]
fn explorer_rediscovers_the_held_rst_bug() {
    let opts = ChaosOptions::quick();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let run = run_explore(&cfg(threads, Some(CI_BUDGET)), &opts, |_| {});
    assert!(
        !run.summary.violations.is_empty(),
        "explorer failed to rediscover the injected held-RST bug in {} points",
        run.summary.points
    );
    let v = &run.summary.violations[0];
    assert!(
        v.invariants.contains(&"no-silent-failure"),
        "unexpected violation class {:?} for {}",
        v.invariants,
        v.schedule
    );
    assert!(
        fault_count(&v.shrunk) <= 2,
        "shrunk reproducer {} still has {} faults after {} shrink runs",
        v.shrunk,
        fault_count(&v.shrunk),
        v.shrink_runs
    );
    // The shrunk schedule must still involve the application crash —
    // the action whose RST the mutation swallows.
    assert!(
        v.shrunk
            .actions
            .iter()
            .any(|t| t.action.kind() == "app-crash"),
        "shrunk reproducer {} lost the app crash",
        v.shrunk
    );
    // The shrunk reproducer ships with its flight-recorder trace: the
    // tail of the minimal schedule's violating replay, ready to dump.
    let flight = v
        .flight
        .as_ref()
        .expect("violation carries no flight snapshot");
    assert!(
        !flight.events.is_empty(),
        "shrunk reproducer's flight snapshot is empty"
    );
}

/// Mirror of the rediscovery gate: the identical lattice slice is
/// clean when the mutation is compiled out, so the rediscovery test's
/// signal comes from the re-introduced bug and nothing else.
#[cfg(not(feature = "inject_held_rst"))]
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: runs a 3000-point lattice slice"
)]
fn budgeted_explore_is_clean_without_the_mutation() {
    let opts = ChaosOptions::quick();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let run = run_explore(&cfg(threads, Some(CI_BUDGET)), &opts, |_| {});
    assert_eq!(run.summary.points, CI_BUDGET);
    assert!(
        run.summary.violations.is_empty(),
        "unmutated build must explore clean; first class: {:?}",
        run.summary
            .violations
            .first()
            .map(|v| v.schedule.to_string())
    );
}
