//! Cross-crate integration tests: every Table 1 failure scenario, the
//! failure-free path, replica lockstep, determinism, and the baseline
//! contrast.
//!
//! Each test builds the paper's Figure 2 topology (client+gateway,
//! primary, backup, switch, serial cable, multicast tap), injects exactly
//! one failure, and asserts three things: (a) the client's byte stream
//! stays correct (integrity), (b) the paper's *symptom* was observed
//! (the right detector fired), and (c) the paper's *recovery action* was
//! taken (takeover vs non-FT, STONITH).

use std::rc::Rc;

use simnet::node::NodeId;
use simnet::time::{SimDuration, SimTime};

use sttcp::config::{Role, StTcpConfig};
use sttcp::events::{FailureReason, FinReleaseReason, StTcpEvent};
use sttcp::server::AppCrashMode;

use sttcp_apps::apps::{ReqRespApp, StreamApp};
use sttcp_apps::client::{ClientWorkload, ReconnectPolicy};
use sttcp_apps::scenario::{build_baseline, AppMaker, Scenario, ScenarioBuilder};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn stream_app(chunk: usize, close: bool) -> AppMaker {
    Rc::new(move || Box::new(StreamApp::new(chunk, close)) as _)
}

fn echo_app() -> AppMaker {
    Rc::new(|| Box::new(sttcp::app::EchoApp::default()) as _)
}

fn download(total: u64) -> ClientWorkload {
    ClientWorkload::Download { total }
}

fn chat() -> ClientWorkload {
    ClientWorkload::EchoChat {
        chunk: 1024,
        period: SimDuration::from_millis(50),
        count: 200,
    }
}

/// A config with thresholds small enough for fast tests.
fn fast_cfg() -> StTcpConfig {
    StTcpConfig {
        app_max_lag_time: SimDuration::from_secs(1),
        max_delay_fin: SimDuration::from_secs(5),
        ..StTcpConfig::default()
    }
}

fn reason_of(s: &Scenario, node: NodeId) -> Option<FailureReason> {
    s.server(node).events().iter().find_map(|e| match e {
        StTcpEvent::PeerDeclaredFailed { reason, at: _ } => Some(*reason),
        _ => None,
    })
}

fn assert_clean_client(s: &Scenario) {
    let log = s.client_log();
    assert!(s.client_finished(), "client did not finish: {log:?}");
    assert_eq!(log.integrity_violations, 0, "stream corrupted");
    assert_eq!(log.resets, 0, "client saw a reset");
    assert_eq!(log.reconnects, 0, "client had to reconnect");
    assert_eq!(log.connects.len(), 1, "client reconnected");
}

// ---------------------------------------------------------------------
// Failure-free operation
// ---------------------------------------------------------------------

#[test]
fn failure_free_download_completes_with_lockstep_replicas() {
    let mut s = ScenarioBuilder::new(stream_app(4096, false), download(256 * 1024))
        .seed(11)
        .build();
    s.world.run_until(t(10_000));
    assert_clean_client(&s);
    // Replica lockstep: identical app digests on both servers.
    let key = s.first_conn_key();
    let dp = s.server(s.primary).app_digest(key).expect("primary app");
    let db = s.server(s.backup).app_digest(key).expect("backup app");
    assert_eq!(dp, db, "replicas diverged");
    // Nobody declared anybody failed.
    assert_eq!(reason_of(&s, s.primary), None);
    assert_eq!(reason_of(&s, s.backup), None);
    assert!(s.server(s.primary).ft_mode());
    assert!(s.server(s.backup).ft_mode());
}

#[test]
fn failure_free_normal_close_is_not_delayed() {
    // Both replicas close after serving: FINs match, no MaxDelayFIN stall.
    let mut s = ScenarioBuilder::new(stream_app(4096, true), download(64 * 1024))
        .seed(12)
        .sttcp(fast_cfg())
        .build();
    s.world.run_until(t(10_000));
    let log = s.client_log();
    assert!(s.client_finished());
    let fin_at = log.server_fin_at.expect("client saw server FIN");
    let done_at = log.finished_at.unwrap();
    assert!(
        fin_at.saturating_since(done_at) < SimDuration::from_secs(2),
        "FIN was delayed: finished {done_at}, fin {fin_at}"
    );
    // The primary released its FIN promptly: either it learned via the
    // heartbeat that the backup also closed, or the client's own FIN was
    // already in hand — never the MaxDelayFIN path.
    let released = s.server(s.primary).events().iter().any(|e| {
        matches!(
            e,
            StTcpEvent::FinReleased {
                reason: FinReleaseReason::PeerAlsoFin | FinReleaseReason::ClientClosedFirst,
                ..
            }
        )
    });
    assert!(released, "events: {:?}", s.server(s.primary).events());
    let delayed = s.server(s.primary).events().iter().any(|e| {
        matches!(
            e,
            StTcpEvent::FinReleased {
                reason: FinReleaseReason::DelayExpired,
                ..
            }
        )
    });
    assert!(!delayed, "normal close took the MaxDelayFIN path");
}

#[test]
fn runs_are_deterministic() {
    let run = |seed| {
        let mut s = ScenarioBuilder::new(stream_app(4096, false), download(128 * 1024))
            .seed(seed)
            .build();
        s.crash_primary_at(t(700));
        s.world.run_until(t(15_000));
        (
            s.client_log().progress.clone(),
            s.server(s.backup).took_over_at(),
        )
    };
    assert_eq!(run(77), run(77));
}

// ---------------------------------------------------------------------
// Table 1 row 1: HW/OS crash
// ---------------------------------------------------------------------

#[test]
fn row1_primary_hw_crash_backup_takes_over() {
    let mut s = ScenarioBuilder::new(stream_app(4096, false), download(256 * 1024))
        .seed(21)
        .build();
    s.crash_primary_at(t(1_000));
    s.world.run_until(t(30_000));
    assert_clean_client(&s);
    // Symptom: backup saw HB failure on both links.
    assert_eq!(
        reason_of(&s, s.backup),
        Some(FailureReason::HbBothLinksDown)
    );
    // Recovery: backup took over and shut the primary down.
    let took = s.server(s.backup).took_over_at().expect("takeover");
    assert!(took > t(1_000));
    assert_eq!(s.server(s.backup).role(), Role::Primary);
    assert!(!s.world.is_powered(s.primary));
}

#[test]
fn row1_backup_hw_crash_primary_goes_non_ft() {
    let mut s = ScenarioBuilder::new(stream_app(4096, false), download(256 * 1024))
        .seed(22)
        .build();
    s.crash_backup_at(t(1_000));
    s.world.run_until(t(30_000));
    assert_clean_client(&s);
    assert_eq!(
        reason_of(&s, s.primary),
        Some(FailureReason::HbBothLinksDown)
    );
    let went_non_ft = s
        .server(s.primary)
        .events()
        .iter()
        .any(|e| matches!(e, StTcpEvent::WentNonFt { .. }));
    assert!(went_non_ft);
    assert!(!s.server(s.primary).ft_mode());
    assert_eq!(s.server(s.primary).role(), Role::Primary);
    assert!(!s.world.is_powered(s.backup), "backup not shut down");
}

#[test]
fn row1_failover_time_scales_with_hb_period() {
    // Demo 2's shape: longer heartbeat period ⇒ longer client-visible
    // stall around the crash.
    let stall_for = |period_ms: u64| {
        let mut s = ScenarioBuilder::new(stream_app(4096, false), download(512 * 1024))
            .seed(23)
            .sttcp(StTcpConfig::with_hb_period(SimDuration::from_millis(
                period_ms,
            )))
            .build();
        s.crash_primary_at(t(1_000));
        s.world.run_until(t(40_000));
        assert_clean_client(&s);
        s.client_log()
            .longest_stall(t(900), s.client_log().finished_at.unwrap())
    };
    let s200 = stall_for(200);
    let s1000 = stall_for(1_000);
    assert!(
        s1000 > s200,
        "stall at 1s HB ({s1000}) should exceed stall at 200ms HB ({s200})"
    );
    // The liveness clock starts at the last heartbeat received, so the
    // minimum detection latency is (timeout - period) = 2 periods.
    assert!(s200 >= SimDuration::from_millis(400), "s200 = {s200}");
    assert!(s1000 >= SimDuration::from_millis(2_000), "s1000 = {s1000}");
}

// ---------------------------------------------------------------------
// Table 1 row 2: application crash without cleanup (no FIN)
// ---------------------------------------------------------------------

#[test]
fn row2_primary_app_crash_silent_detected_and_taken_over() {
    let mut s = ScenarioBuilder::new(echo_app(), chat())
        .seed(31)
        .sttcp(fast_cfg())
        .build();
    s.crash_app_at(s.primary, t(2_000), AppCrashMode::SilentNoCleanup);
    s.world.run_until(t(40_000));
    assert_clean_client(&s);
    let reason = reason_of(&s, s.backup).expect("backup detected");
    assert!(
        matches!(
            reason,
            FailureReason::AppLagBytes | FailureReason::AppLagTime
        ),
        "reason {reason}"
    );
    assert!(s.server(s.backup).took_over_at().is_some());
    assert!(!s.world.is_powered(s.primary));
}

#[test]
fn row2_backup_app_crash_silent_primary_goes_non_ft() {
    let mut s = ScenarioBuilder::new(echo_app(), chat())
        .seed(32)
        .sttcp(fast_cfg())
        .build();
    s.crash_app_at(s.backup, t(2_000), AppCrashMode::SilentNoCleanup);
    s.world.run_until(t(40_000));
    assert_clean_client(&s);
    let reason = reason_of(&s, s.primary).expect("primary detected");
    assert!(matches!(
        reason,
        FailureReason::AppLagBytes | FailureReason::AppLagTime
    ));
    assert!(!s.world.is_powered(s.backup));
    assert_eq!(s.server(s.primary).role(), Role::Primary);
}

// ---------------------------------------------------------------------
// Table 1 row 3: application crash with cleanup (FIN/RST generated)
// ---------------------------------------------------------------------

#[test]
fn row3_primary_app_crash_with_fin_is_held_and_masked() {
    let mut s = ScenarioBuilder::new(echo_app(), chat())
        .seed(41)
        .sttcp(fast_cfg())
        .build();
    s.crash_app_at(s.primary, t(2_000), AppCrashMode::CleanupFin);
    s.world.run_until(t(40_000));
    assert_clean_client(&s);
    // The FIN was held on the primary, never reaching the client before
    // the backup's lag detector condemned the primary.
    let held = s
        .server(s.primary)
        .events()
        .iter()
        .any(|e| matches!(e, StTcpEvent::FinHeld { .. }));
    assert!(held, "primary FIN was not held");
    assert!(s.server(s.backup).took_over_at().is_some());
    assert!(!s.world.is_powered(s.primary));
    // The client never saw a premature FIN: it finished its whole chat.
    assert_eq!(s.client_log().echo_roundtrips, 200);
}

#[test]
fn row3_backup_app_crash_with_fin_primary_goes_non_ft() {
    let mut s = ScenarioBuilder::new(echo_app(), chat())
        .seed(42)
        .sttcp(fast_cfg())
        .build();
    s.crash_app_at(s.backup, t(2_000), AppCrashMode::CleanupFin);
    s.world.run_until(t(40_000));
    assert_clean_client(&s);
    let reason = reason_of(&s, s.primary).expect("primary detected backup failure");
    assert!(
        matches!(
            reason,
            FailureReason::AppLagBytes
                | FailureReason::AppLagTime
                | FailureReason::FinMismatchTimeout
        ),
        "reason {reason}"
    );
    assert!(!s.world.is_powered(s.backup));
}

#[test]
fn row3_primary_app_crash_with_rst_is_masked_too() {
    let mut s = ScenarioBuilder::new(echo_app(), chat())
        .seed(43)
        .sttcp(fast_cfg())
        .build();
    s.crash_app_at(s.primary, t(2_000), AppCrashMode::CleanupRst);
    s.world.run_until(t(40_000));
    assert_clean_client(&s);
    assert!(s.server(s.backup).took_over_at().is_some());
}

// ---------------------------------------------------------------------
// Table 1 row 4: NIC failure
// ---------------------------------------------------------------------

#[test]
fn row4_primary_nic_failure_chatty_client() {
    let mut s = ScenarioBuilder::new(echo_app(), chat())
        .seed(51)
        .sttcp(fast_cfg())
        .build();
    let p = s.primary;
    s.fail_nic_at(p, t(2_000));
    s.world.run_until(t(60_000));
    assert_clean_client(&s);
    let reason = reason_of(&s, s.backup).expect("backup detected");
    assert!(
        matches!(
            reason,
            FailureReason::NetByteLag | FailureReason::NetAckLag | FailureReason::NetPingFail
        ),
        "reason {reason}"
    );
    assert!(s.server(s.backup).took_over_at().is_some());
    assert!(!s.world.is_powered(s.primary));
}

#[test]
fn row4_backup_nic_failure_primary_goes_non_ft() {
    let mut s = ScenarioBuilder::new(echo_app(), chat())
        .seed(52)
        .sttcp(fast_cfg())
        .build();
    let b = s.backup;
    s.fail_nic_at(b, t(2_000));
    s.world.run_until(t(60_000));
    assert_clean_client(&s);
    let reason = reason_of(&s, s.primary).expect("primary detected");
    assert!(matches!(
        reason,
        FailureReason::NetByteLag | FailureReason::NetAckLag | FailureReason::NetPingFail
    ));
    assert!(!s.world.is_powered(s.backup));
    // The client must be completely unaffected (primary kept serving).
    assert_eq!(s.client_log().connects.len(), 1);
}

#[test]
fn row4_primary_nic_failure_quiet_client_uses_ping_path() {
    let mut s = ScenarioBuilder::new(echo_app(), ClientWorkload::Idle)
        .seed(53)
        .sttcp(fast_cfg())
        .build();
    let p = s.primary;
    s.fail_nic_at(p, t(2_000));
    s.world.run_until(t(30_000));
    // With no client traffic at all, only the gateway-ping mechanism can
    // assign blame.
    assert_eq!(reason_of(&s, s.backup), Some(FailureReason::NetPingFail));
    assert!(s.server(s.backup).took_over_at().is_some());
    assert!(!s.world.is_powered(s.primary));
}

// ---------------------------------------------------------------------
// Table 1 row 5: temporary network failure (backup misses bytes)
// ---------------------------------------------------------------------

#[test]
fn row5_backup_recovers_missed_bytes_from_primary() {
    let mut s = ScenarioBuilder::new(echo_app(), chat())
        .seed(61)
        .sttcp(fast_cfg())
        .build();
    // Drop 20 client data frames on the tap toward the backup.
    s.drop_backup_tap_at(t(2_000), 20);
    s.world.run_until(t(40_000));
    assert_clean_client(&s);
    // The backup noticed the gap and recovered it from the primary.
    let backup = s.server(s.backup);
    let requested = backup
        .events()
        .iter()
        .any(|e| matches!(e, StTcpEvent::RecoveryRequested { .. }));
    let completed = backup
        .events()
        .iter()
        .any(|e| matches!(e, StTcpEvent::RecoveryCompleted { .. }));
    assert!(requested, "no recovery request: {:?}", backup.events());
    assert!(completed, "recovery never completed");
    // Nobody was declared failed; the pair is still fault tolerant.
    assert_eq!(reason_of(&s, s.primary), None);
    assert_eq!(reason_of(&s, s.backup), None);
    assert!(s.server(s.primary).ft_mode());
    // And the replicas converged again.
    let key = s.first_conn_key();
    assert_eq!(
        s.server(s.primary).app_digest(key),
        s.server(s.backup).app_digest(key)
    );
}

// ---------------------------------------------------------------------
// Baseline contrast (Demo 1's second half)
// ---------------------------------------------------------------------

#[test]
fn baseline_plain_tcp_requires_reconnect_and_restart() {
    let policy = ReconnectPolicy {
        stall_timeout: SimDuration::from_secs(3),
        targets: vec![("10.0.0.4".parse().unwrap(), 80)],
        reconnect_delay: SimDuration::from_millis(100),
    };
    let mut b = build_baseline(
        71,
        stream_app(4096, false),
        download(512 * 1024),
        Default::default(),
        Some(policy),
    );
    b.crash_primary_at(t(400));
    b.world.run_until(t(60_000));
    let log = b.client_log();
    assert!(b.client_finished(), "client never finished: {log:?}");
    // The disruption is visible: the client reconnected and restarted.
    assert!(log.reconnects >= 1, "no reconnect happened");
    assert!(log.connects.len() >= 2);
    assert_eq!(log.integrity_violations, 0);
}

#[test]
fn sttcp_stall_is_much_smaller_than_baseline_disruption() {
    // ST-TCP run.
    let mut s = ScenarioBuilder::new(stream_app(4096, false), download(512 * 1024))
        .seed(72)
        .build();
    s.crash_primary_at(t(400));
    s.world.run_until(t(60_000));
    assert_clean_client(&s);
    let st_stall = s
        .client_log()
        .longest_stall(t(300), s.client_log().finished_at.unwrap());

    // Baseline run with a 3-second application-level stall timeout.
    let policy = ReconnectPolicy {
        stall_timeout: SimDuration::from_secs(3),
        targets: vec![("10.0.0.4".parse().unwrap(), 80)],
        reconnect_delay: SimDuration::from_millis(100),
    };
    let mut b = build_baseline(
        72,
        stream_app(4096, false),
        download(512 * 1024),
        Default::default(),
        Some(policy),
    );
    b.crash_primary_at(t(400));
    b.world.run_until(t(60_000));
    assert!(b.client_finished());
    let base_stall = b
        .client_log()
        .longest_stall(t(300), b.client_log().finished_at.unwrap());

    assert!(
        st_stall * 2 < base_stall,
        "ST-TCP stall {st_stall} not clearly better than baseline {base_stall}"
    );
}

// ---------------------------------------------------------------------
// Cross-cutting invariants
// ---------------------------------------------------------------------

#[test]
fn no_dual_active_after_any_takeover() {
    for (seed, crash_ms) in [(81u64, 500u64), (82, 1_500), (83, 2_500)] {
        let mut s = ScenarioBuilder::new(stream_app(4096, false), download(256 * 1024))
            .seed(seed)
            .build();
        s.crash_primary_at(t(crash_ms));
        s.world.run_until(t(40_000));
        if s.server(s.backup).took_over_at().is_some() {
            assert!(
                !s.world.is_powered(s.primary),
                "takeover with primary still powered (seed {seed})"
            );
        }
    }
}

#[test]
fn reqresp_workload_survives_primary_crash() {
    // A second application type through the same machinery.
    let app: AppMaker = Rc::new(|| Box::new(ReqRespApp::new()) as _);
    let mut s = ScenarioBuilder::new(app, ClientWorkload::Idle)
        .seed(91)
        .build();
    s.crash_primary_at(t(1_000));
    s.world.run_until(t(10_000));
    assert!(s.server(s.backup).took_over_at().is_some());
    assert!(!s.world.is_powered(s.primary));
}

#[test]
fn profiler_attributes_tick_scheduler_buckets() {
    // The profiled bench run reports per-component wall-clock
    // attribution; the tick-scheduler rework split the old monolithic
    // `tcp` bucket into wheel-advance, egress-poll, and HB-encode
    // scopes. A download with heartbeats on must exercise every one of
    // them — a zero-scope bucket means an instrumentation site was
    // dropped and the `profile` section of BENCH_simperf.json would
    // silently report the work under `other`.
    use simnet::profile::Component;
    let mut s = ScenarioBuilder::new(stream_app(4096, false), download(256 * 1024))
        .seed(5)
        .sttcp(StTcpConfig {
            hb_delta: true,
            hb_batch: 4,
            ..Default::default()
        })
        .build();
    s.world.set_profiling(true);
    s.world.run_until(t(20_000));
    assert!(s.client_finished(), "profiled download did not finish");
    let p = s.world.profiler();
    for c in [
        Component::Kernel,
        Component::Tcp,
        Component::Sttcp,
        Component::App,
        Component::TcpWheel,
        Component::TcpPoll,
        Component::HbEncode,
    ] {
        assert!(
            p.stats(c).scopes > 0,
            "component {:?} recorded no scopes in a profiled download",
            c
        );
    }
}
