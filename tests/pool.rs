//! Integration tests for the N-replica standby pool: rank-ordered
//! takeover, quorum-checked fencing, rank reassignment on rejoin, and
//! the determinism contract of the `--pool` sweep.
//!
//! The seeded pool tier mirrors `tests/soak.rs`: generated schedules,
//! judged only by `sttcp::invariant::check_pool` — never a hand-written
//! per-case oracle. The edge-case tests below pin the fencing corners
//! the quorum rule must get right: the 2-node degenerate pool (where a
//! fence collapses to classic single-shot STONITH), simultaneous
//! candidates racing for the same corpse, and a fenced ex-active that
//! reboots mid-run.

use std::rc::Rc;

use simnet::time::SimTime;
use sttcp::config::StTcpConfig;
use sttcp::events::StTcpEvent;
use sttcp::invariant::Outcome;
use sttcp_apps::apps::StreamApp;
use sttcp_apps::chaos::{chaos_config, run_chaos_case, ChaosOptions, FaultSchedule};
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::pool::{run_pool_case, PoolScenario, PoolScenarioBuilder};
use sttcp_bench::hunt::run_pool_sweep;
use sttcp_bench::parallel::default_threads;

fn quick() -> ChaosOptions {
    ChaosOptions::quick()
}

/// Builds an `n`-member pool serving a small verified download, with
/// re-integration on — the same profile `run_pool_case` uses, minus the
/// fixed replica count.
fn pool_of(n: usize, seed: u64) -> PoolScenario {
    PoolScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download { total: 48 * 1024 },
    )
    .seed(seed)
    .replicas(n)
    .sttcp(StTcpConfig {
        reintegrate: true,
        ..chaos_config()
    })
    .build()
}

fn took_over_at(events: &[StTcpEvent]) -> Option<SimTime> {
    events.iter().find_map(|e| match e {
        StTcpEvent::TookOver { at } => Some(*at),
        _ => None,
    })
}

fn quorum_votes(events: &[StTcpEvent]) -> Option<u32> {
    events.iter().find_map(|e| match e {
        StTcpEvent::FenceQuorumReached { votes, .. } => Some(*votes),
        _ => None,
    })
}

/// The seeded pool tier: generated kill-the-takeover-chain schedules,
/// every run judged by the pool invariant checker. Any violation panics
/// with a paste-able `chaos_hunt --pool` reproducer.
#[test]
fn pool_soak_tier_is_violation_free() {
    let summary = run_pool_sweep(48, 0, default_threads(), &quick(), |case| {
        assert_ne!(
            case.report.outcome,
            Outcome::Violation,
            "seed {}: {}\n  violations: {:?}\n  reproducer:\n    cargo run -p sttcp-bench \
             --bin chaos_hunt -- --pool --seed {} --schedule \"{}\"",
            case.seed,
            case.schedule,
            case.report.violations,
            case.seed,
            case.schedule
        );
    });
    assert!(summary.violated.is_empty());
    // Every generated schedule kills the active (and usually its
    // successor): a sweep with no takeovers means the tier tests nothing.
    assert!(
        summary.takeovers >= 48,
        "only {} takeovers across 48 seeds",
        summary.takeovers
    );
}

/// `--threads` must be invisible in the pool sweep too: outcome
/// counters, takeover totals, and phase percentiles fold to a
/// byte-identical report at 1 and 4 workers.
#[test]
fn pool_sweep_report_is_identical_across_thread_counts() {
    let reports: Vec<String> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let summary = run_pool_sweep(32, 0, threads, &quick(), |_| {});
            assert!(summary.violated.is_empty(), "{:?}", summary.violated);
            summary.to_report(32, 0, true).to_json()
        })
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "pool sweep report differs between 1 and 4 threads"
    );
}

/// Replaying the same pool case twice is bit-for-bit identical — the
/// property that makes `--pool --seed N --schedule "..."` reproducers
/// trustworthy.
#[test]
fn pool_replay_is_deterministic() {
    for seed in [0, 9, 31] {
        let schedule = FaultSchedule::generate_pool(seed);
        let reparsed: FaultSchedule = schedule.to_string().parse().unwrap();
        let a = run_pool_case(seed, &schedule, &quick());
        let b = run_pool_case(seed, &reparsed, &quick());
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "seed {seed} ({schedule}) diverged between runs"
        );
    }
}

/// A two-member pool is the paper's original pair: the lone survivor's
/// "quorum" is its own vote, so the fence degenerates to classic
/// single-shot STONITH — and must still precede the takeover.
#[test]
fn two_node_pool_fence_degenerates_to_stonith() {
    let mut s = pool_of(2, 41);
    s.crash_at(0, SimTime::from_millis(800));
    s.world.run_until(SimTime::from_secs(25));

    assert!(s.client_finished(), "client: {:?}", s.client_log());
    assert_eq!(s.client_log().integrity_violations, 0);
    let events = s.server(1).events();
    assert_eq!(
        quorum_votes(events),
        Some(1),
        "lone survivor must fence on its own vote"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, StTcpEvent::StonithIssued { .. })),
        "degenerate fence must still fire STONITH"
    );
    let took = took_over_at(events).expect("survivor never took over");
    let fenced = events
        .iter()
        .find_map(|e| match e {
            StTcpEvent::FenceQuorumReached { at, .. } => Some(*at),
            _ => None,
        })
        .unwrap();
    assert!(
        fenced <= took,
        "takeover at {took} before fence at {fenced}"
    );
    assert!(s.server(1).is_active());
}

/// When the active dies in a deep pool, every standby sees the same
/// corpse at the same time — simultaneous candidates. The race must
/// resolve by rank: exactly one takeover, by the best-ranked live
/// member, with the deeper standbys staying passive witnesses.
#[test]
fn simultaneous_candidates_resolve_by_rank() {
    let mut s = pool_of(4, 43);
    s.crash_at(0, SimTime::from_millis(800));
    s.world.run_until(SimTime::from_secs(25));

    assert!(s.client_finished(), "client: {:?}", s.client_log());
    assert_eq!(s.client_log().resets, 0);
    assert!(took_over_at(s.server(1).events()).is_some());
    for i in [2, 3] {
        assert_eq!(
            took_over_at(s.server(i).events()),
            None,
            "rank-{i} took over past a live better-ranked candidate"
        );
        assert!(!s.server(i).is_active());
    }
    // The witnesses contributed votes rather than competing: quorum is
    // a majority of the three survivors, so at least one deeper standby
    // confirmed the death alongside the candidate's own vote.
    assert!(quorum_votes(s.server(1).events()).unwrap() >= 2);
}

/// A fenced ex-active that warm-reboots must never emit a client-visible
/// segment before it has rejoined: it comes back cold, stays suppressed
/// through re-integration, and serves again only as a ranked-back
/// standby. The client's single unbroken connection is the proof.
#[test]
fn fenced_ex_active_is_silent_until_rejoined() {
    let schedule: FaultSchedule = "@800 crash primary; @1500 reboot primary".parse().unwrap();
    let report = run_pool_case(29, &schedule, &ChaosOptions::default());
    assert_eq!(
        report.outcome,
        Outcome::Recovered,
        "{:?}",
        report.violations
    );

    // No resets, no reconnects, no corruption: nothing the rebooted
    // ex-active could have emitted reached the client.
    assert_eq!(report.client.resets, 0);
    assert_eq!(report.client.integrity_violations, 0);
    assert!(report.client.finished);

    // The rebooted member never took the service back...
    assert_eq!(took_over_at(&report.member_events[0]), None);
    assert_ne!(report.active_at_end, Some(0));
    // ...and re-entered only through the join protocol, under a rank
    // behind every configured one.
    assert!(report.member_events[0]
        .iter()
        .any(|e| matches!(e, StTcpEvent::ReintegrationCompleted { .. })));
    assert!(
        report.final_ranks[0] >= 3,
        "rejoiner kept rank {}",
        report.final_ranks[0]
    );
}

/// The resurrection race: the active crashes and warm-reboots *faster
/// than the heartbeat timeout*, so by liveness alone it never looks
/// dead — yet it comes back as a suppressed joiner at its old rank, so
/// nobody is serving. The survivors must recognise the impossible
/// Primary→Backup role transition, mark the old incarnation defunct,
/// and fence it so the takeover proceeds (found by the full-profile
/// sweep as seed 922's schedule; before the defunct rule the client
/// hung forever with no fence ever opening).
#[test]
fn fast_rebooted_active_is_fenced_as_defunct() {
    let schedule: FaultSchedule = "@363 crash primary; @809 reboot primary; @5550 crash backup"
        .parse()
        .unwrap();
    let report = run_pool_case(922, &schedule, &ChaosOptions::default());
    assert_eq!(
        report.outcome,
        Outcome::Recovered,
        "{:?}",
        report.violations
    );
    assert!(report.client.finished);
    assert_eq!(report.client.resets, 0);

    // Both survivors observed the role transition and condemned the
    // still-heartbeating ghost; rank 1 took over after a real quorum.
    for member in [1, 2] {
        assert!(
            report.member_events[member]
                .iter()
                .any(|e| matches!(e, StTcpEvent::DefunctActiveDetected { rank: 0, .. })),
            "rank {member} never marked the rebooted active defunct"
        );
    }
    let fence = report.member_events[1]
        .iter()
        .find_map(|e| match e {
            StTcpEvent::FenceQuorumReached {
                target_rank: 0,
                votes,
                at,
            } => Some((*votes, *at)),
            _ => None,
        })
        .expect("rank 1 must fence the defunct active");
    assert!(fence.0 >= 2, "majority quorum, not self-certification");
    let takeover = took_over_at(&report.member_events[1]).expect("rank 1 takes over");
    assert!(fence.1 <= takeover);
    // The chain continues: rank 2 inherits the service when rank 1 dies.
    assert_eq!(report.active_at_end, Some(2));
}

/// Byzantine heartbeats (CRC-valid, semantically impossible) across a
/// seeded sweep of both sides and both modes: the detector must reject
/// and quarantine — any mis-verdict trips the `byzantine-liar-verdict`
/// or `no-false-positive` invariant and fails the run.
#[test]
fn byzantine_heartbeat_sweep_is_violation_free() {
    for seed in 0..60 {
        let schedule = FaultSchedule::generate_byzantine(seed);
        let report = run_chaos_case(seed, &schedule, &quick());
        assert_ne!(
            report.outcome,
            Outcome::Violation,
            "seed {seed}: {schedule}\n  violations: {:?}",
            report.violations
        );
    }
}

/// The same byzantine schedules against the pool: a lying member must
/// end up quarantined by the honest majority, never trusted into a
/// takeover chain.
#[test]
fn pool_absorbs_byzantine_heartbeats() {
    for seed in 0..24 {
        let schedule = FaultSchedule::generate_byzantine(seed);
        let report = run_pool_case(seed, &schedule, &quick());
        assert_ne!(
            report.outcome,
            Outcome::Violation,
            "seed {seed}: {schedule}\n  violations: {:?}",
            report.violations
        );
    }
}
