//! Flight-recorder integration tests: schema round-trips, causal
//! linkage of the failover chain, byte-identical dumps regardless of
//! `--threads`, ring wraparound at capacity, and the capture knobs on
//! the chaos harness.
//!
//! The recorder is always on, so every scenario here simply runs a
//! seeded failover and inspects the tail it left behind.

use std::rc::Rc;

use simnet::flight::{FlightKind, FlightSnapshot, SpanId};
use simnet::time::{SimDuration, SimTime};

use sttcp_apps::apps::StreamApp;
use sttcp_apps::chaos::{run_chaos_case, ChaosOptions, FaultSchedule};
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::{AppMaker, Scenario, ScenarioBuilder};

use sttcp_bench::parallel::parallel_map_indexed;

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn stream_app() -> AppMaker {
    Rc::new(|| Box::new(StreamApp::new(4096, false)) as _)
}

/// A seeded mid-transfer primary crash; the returned scenario has
/// completed failover and the recorder holds the whole causal story.
fn crashed_scenario(seed: u64) -> Scenario {
    let mut s = ScenarioBuilder::new(stream_app(), ClientWorkload::Download { total: 256 * 1024 })
        .seed(seed)
        .build();
    s.crash_primary_at(t(1_000));
    s.world.run_until(t(12_000));
    s
}

fn crash_snapshot(seed: u64) -> FlightSnapshot {
    crashed_scenario(seed).world.flight_snapshot(None)
}

#[test]
fn dump_validates_and_round_trips() {
    let snap = crash_snapshot(3);
    assert!(!snap.events.is_empty(), "recorder captured nothing");
    let dump = obs::flightdump::snapshot_to_json(&snap);
    obs::flightdump::validate(&dump).expect("dump fails its own schema");
    let (events, hosts) = obs::flightdump::from_json(&dump).expect("round-trip");
    assert_eq!(events, snap.events);
    assert_eq!(hosts, snap.hosts);
    // The serialized text reparses to the same value.
    let text = dump.to_string();
    let reparsed = obs::json::Json::parse(&text).expect("reparse");
    assert_eq!(reparsed, dump);
}

#[test]
fn failover_chain_is_causally_linked() {
    let snap = crash_snapshot(3);

    // The injected fault is in the world ring (no node attribution).
    let fault = snap
        .events
        .iter()
        .find(|e| matches!(e.kind, FlightKind::Fault { .. }))
        .expect("no fault event recorded");
    assert_eq!(fault.node, None, "fault events belong to the world ring");

    // The backup's verdict is parented to a heartbeat it received:
    // the last evidence of life before the silence that convicted.
    let verdict = snap
        .events
        .iter()
        .find(|e| matches!(e.kind, FlightKind::Verdict { .. }))
        .expect("no verdict event recorded");
    assert_ne!(verdict.span, SpanId::NONE);
    assert!(
        snap.events
            .iter()
            .any(|e| matches!(e.kind, FlightKind::HbRecv { .. }) && e.span == verdict.parent),
        "verdict parent {} is not a received heartbeat span",
        verdict.parent
    );

    // STONITH and takeover continue the verdict's span.
    let stonith = snap
        .events
        .iter()
        .find(|e| matches!(e.kind, FlightKind::Stonith { .. }))
        .expect("no stonith event recorded");
    assert_eq!(stonith.span, verdict.span);
    let takeover = snap
        .events
        .iter()
        .find(|e| matches!(e.kind, FlightKind::Takeover { .. }))
        .expect("no takeover event recorded");
    assert_eq!(takeover.span, verdict.span);
    assert_eq!(takeover.parent, verdict.parent);

    // And the story reads in order: fault, then verdict, then takeover.
    assert!(fault.seq < verdict.seq && verdict.seq < takeover.seq);
}

#[test]
fn dumps_are_byte_identical_across_thread_counts() {
    // `--threads` only parallelizes across seeds; each world is
    // single-threaded and deterministic, so the dump a seed produces
    // must not depend on how many workers ran the sweep.
    let seeds = [3u64, 4, 5, 6];
    let dump_all = |threads: usize| -> Vec<String> {
        parallel_map_indexed(threads, &seeds, |_, &seed| {
            obs::flightdump::snapshot_to_json(&crash_snapshot(seed)).to_string()
        })
    };
    let one = dump_all(1);
    let four = dump_all(4);
    assert_eq!(one, four, "dumps differ between 1 and 4 threads");
    assert!(one.iter().all(|d| !d.is_empty()));
}

#[test]
fn ring_wraparound_keeps_newest_events() {
    // Shrink the rings so a full failover overflows them, then check
    // the recorder kept the *newest* events per host and never lied
    // about order.
    const CAP: usize = 64;
    let mut s = ScenarioBuilder::new(stream_app(), ClientWorkload::Download { total: 256 * 1024 })
        .seed(3)
        .build();
    s.world.set_flight_capacity(CAP);
    s.crash_primary_at(t(1_000));
    s.world.run_until(t(12_000));
    let snap = s.world.flight_snapshot(None);

    let hosts = snap.hosts.len();
    let mut per_host = vec![0usize; hosts + 1];
    let mut last_seq = 0u64;
    let mut max_seq_overall = 0u64;
    for e in &snap.events {
        assert!(e.seq > last_seq, "snapshot seqs not strictly increasing");
        last_seq = e.seq;
        max_seq_overall = max_seq_overall.max(e.seq);
        match e.node {
            Some(n) => {
                assert!(n.0 < hosts, "node id out of host range");
                per_host[n.0 + 1] += 1;
            }
            None => per_host[0] += 1,
        }
    }
    for (i, &count) in per_host.iter().enumerate() {
        assert!(count <= CAP, "ring {i} retained {count} > capacity {CAP}");
    }
    // The run recorded far more events than the rings hold, so the
    // retained tail must be the newest slice of the stream.
    assert!(
        max_seq_overall > (snap.events.len() as u64),
        "no wraparound happened; raise traffic or lower capacity"
    );
    // The failover verdict happened late, so it must have survived.
    assert!(
        snap.events
            .iter()
            .any(|e| matches!(e.kind, FlightKind::Verdict { .. })),
        "wraparound evicted the verdict"
    );
}

#[test]
fn window_limits_snapshot_to_recent_tail() {
    let s = crashed_scenario(3);
    let full = s.world.flight_snapshot(None);
    let tail = s.world.flight_snapshot(Some(SimDuration::from_millis(50)));
    assert!(tail.events.len() < full.events.len());
    assert_eq!(tail.window_ms, Some(50));
    let newest = full.events.last().expect("full snapshot empty").time;
    let cutoff = SimDuration::from_millis(50);
    assert!(
        tail.events.iter().all(|e| e.time + cutoff >= newest),
        "windowed snapshot kept an event older than the window"
    );
}

#[test]
fn chaos_capture_is_off_on_clean_runs_and_forced_by_flight_always() {
    let schedule: FaultSchedule = "@1000 crash primary".parse().expect("schedule");
    let quiet = run_chaos_case(7, &schedule, &ChaosOptions::quick());
    assert!(
        quiet.flight.is_none(),
        "clean run captured a flight snapshot without flight_always"
    );
    let forced = run_chaos_case(
        7,
        &schedule,
        &ChaosOptions {
            flight_always: true,
            flight_window_ms: None,
            ..ChaosOptions::quick()
        },
    );
    let snap = forced.flight.expect("flight_always captured nothing");
    assert!(snap
        .events
        .iter()
        .any(|e| matches!(e.kind, FlightKind::Fault { .. })));
}
