//! Seeded soak tiers: generated fault schedules run through the full
//! topology and judged by the first-class invariant checker
//! (`sttcp::invariant`). Each case derives its own expectation from the
//! schedule — what a correct system may legitimately do under those
//! faults — so every assertion here is "no invariant violation", never
//! a hand-written per-case oracle.
//!
//! Three tiers, in increasing nastiness:
//!
//! * **single** — one fault per run (the seed repo's original tier),
//! * **multi**  — 1–4 composed faults, including handshake/FIN-window
//!   timing,
//! * **double** — a second fault injected while the system is still
//!   absorbing the first (failure during repair).
//!
//! When a case fails, the panic message contains a paste-able
//! reproducer command line; `chaos_hunt` shrinks it further.

use sttcp::invariant::Outcome;
use sttcp_apps::chaos::{run_chaos_case, shrink_schedule, ChaosOptions, FaultSchedule};

/// Runs one generated schedule and panics with a shrunk, paste-able
/// reproducer if any invariant is violated.
fn soak_case(seed: u64, schedule: FaultSchedule, opts: &ChaosOptions) {
    let report = run_chaos_case(seed, &schedule, opts);
    if report.outcome != Outcome::Violation {
        return;
    }
    let shrunk = shrink_schedule(seed, &schedule, opts);
    panic!(
        "seed {seed}: {schedule}\n  violations: {:?}\n  client: {:?}\n  \
         minimal reproducer:\n    cargo run -p sttcp-bench --bin chaos_hunt -- \
         --seed {seed} --schedule \"{}\"",
        report.violations, report.client, shrunk.schedule
    );
}

/// Tier 1: one fault per run.
#[test]
fn soak_single_fault() {
    let opts = ChaosOptions::quick();
    for seed in 0..60 {
        soak_case(seed, FaultSchedule::generate_single(seed), &opts);
    }
}

/// Tier 2: composed multi-fault schedules (1–4 actions).
#[test]
fn soak_multi_fault() {
    let opts = ChaosOptions::quick();
    for seed in 0..60 {
        soak_case(seed, FaultSchedule::generate(seed), &opts);
    }
}

/// Tier 3: double faults — the second lands while the system is still
/// recovering from the first (the window the paper's single-failure
/// assumption leaves open; we demand detection, never silence).
#[test]
fn soak_double_fault() {
    let opts = ChaosOptions::quick();
    for seed in 0..64 {
        soak_case(seed, FaultSchedule::generate_double(seed), &opts);
    }
}

/// The full-size workload tier: fewer seeds, real download size and
/// horizon, both generators. Catches anything the quick profile's
/// shorter horizon hides.
#[test]
fn soak_full_horizon() {
    let opts = ChaosOptions::default();
    for seed in 0..12 {
        soak_case(seed, FaultSchedule::generate(seed), &opts);
        soak_case(seed, FaultSchedule::generate_double(seed), &opts);
    }
}
