//! Randomized soak tests: seeded fault schedules over the full topology.
//!
//! Each case draws a workload, a failure class, and an injection time
//! from a seeded RNG, runs the complete scenario, and checks the
//! *invariants* that must hold regardless of what was drawn:
//!
//! 1. the client's byte stream is never corrupted,
//! 2. the client never needs a reconnect (single connection),
//! 3. after any takeover the old primary is powered off (no dual-active),
//! 4. at most one server declares the other failed per run,
//! 5. with no failure injected, nobody is ever declared failed.

use std::rc::Rc;

use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

use sttcp::app::EchoApp;
use sttcp::config::StTcpConfig;
use sttcp::events::StTcpEvent;
use sttcp::server::AppCrashMode;

use sttcp_apps::apps::{ReqRespApp, StreamApp};
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::{AppMaker, ScenarioBuilder};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Fault {
    None,
    CrashPrimary,
    CrashBackup,
    AppCrashPrimary(AppCrashMode),
    AppCrashBackup(AppCrashMode),
    NicPrimary,
    NicBackup,
    TapLoss(u64),
}

fn draw_fault(rng: &mut SimRng) -> Fault {
    match rng.index(10) {
        0 => Fault::None,
        1 => Fault::CrashPrimary,
        2 => Fault::CrashBackup,
        3 => Fault::AppCrashPrimary(AppCrashMode::SilentNoCleanup),
        4 => Fault::AppCrashPrimary(AppCrashMode::CleanupFin),
        5 => Fault::AppCrashBackup(AppCrashMode::SilentNoCleanup),
        6 => Fault::AppCrashBackup(AppCrashMode::CleanupFin),
        7 => Fault::NicPrimary,
        8 => Fault::NicBackup,
        _ => Fault::TapLoss(1 + rng.range_u64(1, 30)),
    }
}

fn run_case(seed: u64) {
    let mut rng = SimRng::seed_from(seed);

    // Draw a workload.
    let (app, workload): (AppMaker, ClientWorkload) = match rng.index(3) {
        0 => (
            Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
            ClientWorkload::Download {
                total: 64 * 1024 + rng.range_u64(0, 512 * 1024),
            },
        ),
        1 => (
            Rc::new(|| Box::new(EchoApp::default()) as _),
            ClientWorkload::EchoChat {
                chunk: 256 + rng.index(1024),
                period: SimDuration::from_millis(20 + rng.range_u64(0, 80)),
                count: 60 + rng.next_u32() % 100,
            },
        ),
        _ => (
            Rc::new(|| Box::new(ReqRespApp::new()) as _),
            ClientWorkload::Idle,
        ),
    };

    let fault = draw_fault(&mut rng);
    let inject_ms = 500 + rng.range_u64(0, 2_500);
    let hb_ms = [200u64, 500][rng.index(2)];

    let cfg = StTcpConfig {
        app_max_lag_time: SimDuration::from_secs(1),
        max_delay_fin: SimDuration::from_secs(5),
        ..StTcpConfig::with_hb_period(SimDuration::from_millis(hb_ms))
    };
    let mut s = ScenarioBuilder::new(app, workload.clone())
        .seed(seed)
        .sttcp(cfg)
        .build();

    let at = SimTime::from_millis(inject_ms);
    match fault {
        Fault::None => {}
        Fault::CrashPrimary => s.crash_primary_at(at),
        Fault::CrashBackup => s.crash_backup_at(at),
        Fault::AppCrashPrimary(mode) => s.crash_app_at(s.primary, at, mode),
        Fault::AppCrashBackup(mode) => s.crash_app_at(s.backup, at, mode),
        Fault::NicPrimary => {
            let p = s.primary;
            s.fail_nic_at(p, at);
        }
        Fault::NicBackup => {
            let b = s.backup;
            s.fail_nic_at(b, at);
        }
        Fault::TapLoss(n) => s.drop_backup_tap_at(at, n),
    }

    s.world.run_until(SimTime::from_secs(120));

    let log = s.client_log();
    let ctx = format!("seed {seed}, fault {fault:?}, workload {workload:?}, hb {hb_ms}ms");

    // Invariant 1 & 2: stream integrity, single connection, no resets.
    assert_eq!(log.integrity_violations, 0, "corruption: {ctx}");
    assert_eq!(log.resets, 0, "client reset: {ctx}");
    assert!(log.connects.len() <= 1, "client reconnected: {ctx}");
    // Workloads with a defined end must complete (Idle has none).
    if !matches!(workload, ClientWorkload::Idle) {
        assert!(s.client_finished(), "workload incomplete: {ctx}\n{log:?}");
    }

    // Invariant 3: no dual-active.
    let b_took = s.server(s.backup).took_over_at().is_some();
    if b_took {
        assert!(!s.world.is_powered(s.primary), "dual active: {ctx}");
    }

    // Invariant 4: at most one side issued a verdict.
    let verdicts = [s.primary, s.backup]
        .iter()
        .filter(|&&n| {
            s.server(n)
                .events()
                .iter()
                .any(|e| matches!(e, StTcpEvent::PeerDeclaredFailed { .. }))
        })
        .count();
    assert!(verdicts <= 1, "mutual condemnation: {ctx}");

    // Invariant 5: clean runs stay clean (tap loss is recoverable and
    // must not trigger verdicts either).
    if matches!(fault, Fault::None | Fault::TapLoss(_)) {
        assert_eq!(verdicts, 0, "false positive: {ctx}");
        assert!(s.server(s.primary).ft_mode(), "lost ft mode: {ctx}");
    }
}

#[test]
fn soak_seeds_0_to_19() {
    for seed in 0..20 {
        run_case(seed);
    }
}

#[test]
fn soak_seeds_20_to_39() {
    for seed in 20..40 {
        run_case(seed);
    }
}

#[test]
fn soak_seeds_40_to_59() {
    for seed in 40..60 {
        run_case(seed);
    }
}
