//! Seeded soak tiers: generated fault schedules run through the full
//! topology and judged by the first-class invariant checker
//! (`sttcp::invariant`). Each case derives its own expectation from the
//! schedule — what a correct system may legitimately do under those
//! faults — so every assertion here is "no invariant violation", never
//! a hand-written per-case oracle.
//!
//! Three tiers, in increasing nastiness:
//!
//! * **single** — one fault per run (the seed repo's original tier),
//! * **multi**  — 1–4 composed faults, including handshake/FIN-window
//!   timing,
//! * **double** — a second fault injected while the system is still
//!   absorbing the first (failure during repair).
//!
//! Every run is an independent deterministic world, so each tier fans
//! its seeds out over the host's cores and then judges the reports in
//! seed order — the first failing seed reported is the same one a
//! sequential loop would have hit.
//!
//! When a case fails, the panic message contains a paste-able
//! reproducer command line; `chaos_hunt` shrinks it further.

use sttcp::invariant::Outcome;
use sttcp_apps::chaos::{run_chaos_case, shrink_schedule, ChaosOptions, FaultSchedule};
use sttcp_bench::parallel::{default_threads, parallel_seeds};

/// Runs `seeds` schedules in parallel and panics — with a shrunk,
/// paste-able reproducer — on the lowest-seed invariant violation, if
/// any. Shrinking reruns the case many times, so it happens
/// sequentially and only for the seed actually reported.
fn soak_tier(seeds: u64, make: fn(u64) -> FaultSchedule, opts: &ChaosOptions) {
    let reports = parallel_seeds(default_threads(), 0, seeds, |seed| {
        let schedule = make(seed);
        let report = run_chaos_case(seed, &schedule, opts);
        (schedule, report)
    });
    for (seed, (schedule, report)) in reports.into_iter().enumerate() {
        let seed = seed as u64;
        if report.outcome != Outcome::Violation {
            continue;
        }
        let shrunk = shrink_schedule(seed, &schedule, opts);
        panic!(
            "seed {seed}: {schedule}\n  violations: {:?}\n  client: {:?}\n  \
             minimal reproducer:\n    cargo run -p sttcp-bench --bin chaos_hunt -- \
             --seed {seed} --schedule \"{}\"",
            report.violations, report.client, shrunk.schedule
        );
    }
}

/// Tier 1: one fault per run.
#[test]
fn soak_single_fault() {
    soak_tier(60, FaultSchedule::generate_single, &ChaosOptions::quick());
}

/// Tier 2: composed multi-fault schedules (1–4 actions).
#[test]
fn soak_multi_fault() {
    soak_tier(60, FaultSchedule::generate, &ChaosOptions::quick());
}

/// Tier 3: double faults — the second lands while the system is still
/// recovering from the first (the window the paper's single-failure
/// assumption leaves open; we demand detection, never silence).
#[test]
fn soak_double_fault() {
    soak_tier(64, FaultSchedule::generate_double, &ChaosOptions::quick());
}

/// The full-size workload tier: fewer seeds, real download size and
/// horizon, both generators. Catches anything the quick profile's
/// shorter horizon hides.
#[test]
fn soak_full_horizon() {
    let opts = ChaosOptions::default();
    soak_tier(12, FaultSchedule::generate, &opts);
    soak_tier(12, FaultSchedule::generate_double, &opts);
}
